#include "traffic/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace adhoc::traffic {

namespace {



const telemetry::MetricId kMetricSessions = telemetry::counter("traffic.sessions");
const telemetry::MetricId kMetricDeliveries = telemetry::counter("traffic.deliveries");
const telemetry::MetricId kMetricDuplicates = telemetry::counter("traffic.duplicates");
const telemetry::MetricId kMetricDataTx = telemetry::counter("traffic.data.tx");
const telemetry::MetricId kMetricDataBytes = telemetry::counter("traffic.data.bytes", "bytes");
const telemetry::MetricId kMetricBeacons = telemetry::counter("traffic.sv.beacons");
const telemetry::MetricId kMetricControlBytes = telemetry::counter("traffic.sv.bytes", "bytes");
const telemetry::MetricId kMetricPulls = telemetry::counter("traffic.pulls");
const telemetry::MetricId kMetricRepairs = telemetry::counter("traffic.repairs");
const telemetry::MetricId kMetricEvictions = telemetry::counter("traffic.cache.evictions");
const telemetry::MetricId kMetricCacheBytes = telemetry::gauge("traffic.cache.bytes", "bytes");

// Per-packet wire accounting (documented in docs/TRAFFIC.md): a data
// packet is an 8-byte (source, seq) header plus 4 bytes per piggybacked
// history id; a pull request is a 4-byte header plus 8 bytes per key.
constexpr std::size_t kDataHeaderBytes = 8;
constexpr std::size_t kHistIdBytes = 4;
constexpr std::size_t kPullHeaderBytes = 4;
constexpr std::size_t kPullKeyBytes = 8;

telemetry::MetricId latency_metric() {
    static const telemetry::MetricId id =
        telemetry::histogram("traffic.session_latency", latency_bounds(), "time");
    return id;
}

}  // namespace

const std::vector<std::uint64_t>& latency_bounds() {
    static const std::vector<std::uint64_t> bounds = {1,  2,  3,  4,  6,  8,
                                                      12, 16, 24, 32, 48, 64};
    return bounds;
}

struct TrafficEngine::RunState {
    const Workload* wl = nullptr;
    std::size_t n = 0;

    std::vector<DupCache> caches;
    // Flat bit arenas, `sessions x n` bits each: per-session per-node flags
    // without per-session allocation.
    std::vector<std::uint64_t> received;   ///< payload delivered to the node
    std::vector<std::uint64_t> forwarded;  ///< node already relayed the session
    std::vector<std::uint64_t> pulled;     ///< node already pulled the session

    /// (source, seq) -> session index; seqs are dense per source.
    std::vector<std::vector<std::uint32_t>> session_of;

    std::vector<Packet> packets;
    std::vector<Control> controls;
    std::vector<std::size_t> repairs;  ///< repairs served, per node

    EventQueue queue;
    faults::FaultSession fault;
    TrafficResult result;

    [[nodiscard]] bool bit(const std::vector<std::uint64_t>& arena, std::size_t session,
                           NodeId v) const {
        const std::size_t i = session * n + v;
        return (arena[i >> 6] >> (i & 63)) & 1;
    }
    void set_bit(std::vector<std::uint64_t>& arena, std::size_t session, NodeId v) {
        const std::size_t i = session * n + v;
        arena[i >> 6] |= std::uint64_t{1} << (i & 63);
    }

    [[nodiscard]] bool node_up(NodeId v) const {
        return !fault.active() || fault.node_up(v);
    }
    [[nodiscard]] bool link_ok(NodeId a, NodeId b) const {
        return !fault.active() || fault.link_up(a, b);
    }
    [[nodiscard]] bool dropped(NodeId from, NodeId to) {
        return fault.active() && fault.drop_directed(from, to);
    }

    /// Session index for an advertised key, or npos for unknown ids.
    [[nodiscard]] std::size_t session_index(SessionKey key) const {
        if (key.source >= session_of.size()) return npos;
        const auto& row = session_of[key.source];
        if (key.seq >= row.size()) return npos;
        return row[key.seq];
    }
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

TrafficEngine::TrafficEngine(const Graph& g, const ForwardPolicy& policy, EngineConfig config)
    : graph_(&g), policy_(&policy), config_(config), medium_(config.medium) {
    assert(config_.history <= kMaxHistory);
    if (config_.history > kMaxHistory) config_.history = kMaxHistory;
}

void TrafficEngine::transmit_data(RunState& rs, std::uint32_t session, NodeId sender,
                                  std::span<const NodeId> hist, double now, Rng& rng) {
    Packet packet;
    packet.session = session;
    packet.sender = sender;
    packet.hist_count = static_cast<std::uint8_t>(std::min(hist.size(), config_.history));
    // Keep the most recent `history` forwarders; the sender is always last.
    const std::size_t skip = hist.size() - packet.hist_count;
    for (std::size_t i = 0; i < packet.hist_count; ++i) packet.hist[i] = hist[skip + i];

    rs.packets.push_back(packet);
    const std::size_t index = rs.packets.size() - 1;
    rs.result.data_transmissions += 1;
    rs.result.data_bytes += kDataHeaderBytes + kHistIdBytes * packet.hist_count;

    for (const NodeId u : graph_->neighbors(sender)) {
        if (!rs.link_ok(sender, u)) continue;
        if (rs.dropped(sender, u)) continue;
        const auto at = medium_.delivery_time(now, rng);
        if (!at) continue;
        rs.queue.push(*at, EventKind::kDelivery, u, index);
    }
}

void TrafficEngine::deliver_data(RunState& rs, NodeId node, const Packet& packet, double now,
                                 Rng& rng) {
    if (!rs.node_up(node)) return;  // crashed nodes neither receive nor store

    const std::size_t session = packet.session;
    const SessionKey key = rs.wl->key(session);
    const CacheInsert inserted = rs.caches[node].insert(key.source, key.seq);
    const bool fresh = inserted == CacheInsert::kNew && !rs.bit(rs.received, session, node);
    if (inserted != CacheInsert::kNew) {
        rs.result.duplicates_suppressed += 1;
    }
    if (fresh) {
        rs.set_bit(rs.received, session, node);
        rs.result.fresh_deliveries += 1;
        auto& out = rs.result.sessions[session];
        out.last_delivery = std::max(out.last_delivery, now);
    }

    // Forward at most once per (session, node), and only on a genuinely
    // fresh receipt — an LRU-evicted id coming back is not new traffic.
    if (!fresh || rs.bit(rs.forwarded, session, node)) return;
    std::array<NodeId, kMaxHistory + 1> visited{};
    std::size_t count = 0;
    for (std::size_t i = 0; i < packet.hist_count; ++i) visited[count++] = packet.hist[i];
    if (!policy_->should_forward(node, std::span<const NodeId>(visited.data(), count))) return;

    rs.set_bit(rs.forwarded, session, node);
    rs.result.sessions[session].forwards += 1;
    visited[count++] = node;
    transmit_data(rs, static_cast<std::uint32_t>(session), node,
                  std::span<const NodeId>(visited.data(), count), now, rng);
}

void TrafficEngine::beacon(RunState& rs, NodeId node, double now, Rng& rng) {
    if (!rs.node_up(node)) return;  // a recovered node resumes at its next tick
    SummaryVector sv = summarize(rs.caches[node]);
    if (sv.sources.empty()) return;

    rs.result.sv_beacons += 1;
    rs.result.control_bytes += encoded_size(sv);

    Control control;
    control.type = Control::kSummary;
    control.sender = node;
    control.sv = std::move(sv);
    rs.controls.push_back(std::move(control));
    const std::size_t index = rs.controls.size() - 1;

    for (const NodeId u : graph_->neighbors(node)) {
        if (!rs.link_ok(node, u)) continue;
        if (rs.dropped(node, u)) continue;
        const auto at = medium_.delivery_time(now, rng);
        if (!at) continue;
        rs.queue.push(*at, EventKind::kControl, u, index);
    }
}

void TrafficEngine::deliver_control(RunState& rs, NodeId node, std::size_t index, double now,
                                    Rng& rng) {
    if (!rs.node_up(node)) return;
    const Control& control = rs.controls[index];

    if (control.type == Control::kSummary) {
        // Diff the advertisement against our own holdings and pull the
        // gaps from the beaconing neighbor.  Each (session, node) pulls at
        // most once per run — the bound that keeps the exchange finite.
        const std::vector<SessionKey> gaps =
            missing_keys(control.sv, rs.caches[node], /*limit=*/0);
        std::vector<SessionKey> wants;
        for (const SessionKey key : gaps) {
            if (wants.size() >= config_.pull_batch) break;
            const std::size_t session = rs.session_index(key);
            if (session == RunState::npos) continue;
            if (rs.bit(rs.received, session, node)) continue;
            if (rs.bit(rs.pulled, session, node)) continue;
            rs.set_bit(rs.pulled, session, node);
            wants.push_back(key);
        }
        if (wants.empty()) return;

        rs.result.pulls_sent += wants.size();
        rs.result.control_bytes += kPullHeaderBytes + kPullKeyBytes * wants.size();

        Control pull;
        pull.type = Control::kPull;
        pull.sender = node;
        pull.wants = std::move(wants);
        const NodeId target = control.sender;
        rs.controls.push_back(std::move(pull));
        const std::size_t pull_index = rs.controls.size() - 1;

        if (!rs.link_ok(node, target)) return;
        if (rs.dropped(node, target)) return;
        const auto at = medium_.delivery_time(now, rng);
        if (!at) return;
        rs.queue.push(*at, EventKind::kControl, target, pull_index);
        return;
    }

    // Pull request: serve each still-held id as a targeted retransmission,
    // within this node's per-run repair budget.
    const NodeId requester = control.sender;
    for (const SessionKey key : control.wants) {
        if (rs.repairs[node] >= config_.pull_budget) break;
        if (!rs.caches[node].holds(key.source, key.seq)) continue;
        const std::size_t session = rs.session_index(key);
        if (session == RunState::npos) continue;

        rs.repairs[node] += 1;
        rs.result.repairs_served += 1;

        Packet packet;
        packet.session = static_cast<std::uint32_t>(session);
        packet.sender = node;
        packet.hist_count = 1;
        packet.hist[0] = node;
        rs.packets.push_back(packet);
        const std::size_t packet_index = rs.packets.size() - 1;
        rs.result.data_transmissions += 1;
        rs.result.data_bytes += kDataHeaderBytes + kHistIdBytes;

        if (!rs.link_ok(node, requester)) continue;
        if (rs.dropped(node, requester)) continue;
        const auto at = medium_.delivery_time(now, rng);
        if (!at) continue;
        rs.queue.push(*at, EventKind::kDelivery, requester, packet_index);
    }
}

void TrafficEngine::classify(RunState& rs) {
    const std::size_t n = rs.n;
    faults::FinalFaultState final_state;
    if (plan_ != nullptr) {
        final_state = faults::final_fault_state(*plan_, n);
    } else {
        final_state.node_down.assign(n, 0);
    }

    std::size_t up_count = 0;
    for (NodeId v = 0; v < n; ++v) {
        if (!final_state.node_down[v]) ++up_count;
    }

    const auto link_down = [&](NodeId a, NodeId b) {
        const Edge c = canonical(Edge{a, b});
        for (const Edge& e : final_state.links_down) {
            if (e == c) return true;
        }
        return false;
    };

    // Reachability in the final faulted topology, memoized per source —
    // sessions share sources, so each BFS is computed once.
    std::vector<std::vector<char>> reach_by_source(n);
    const auto reach = [&](NodeId source) -> const std::vector<char>& {
        std::vector<char>& r = reach_by_source[source];
        if (!r.empty()) return r;
        r.assign(n, 0);
        if (final_state.node_down[source]) return r;  // down source: nothing reachable
        std::vector<NodeId> frontier{source};
        r[source] = 1;
        while (!frontier.empty()) {
            const NodeId v = frontier.back();
            frontier.pop_back();
            for (const NodeId u : graph_->neighbors(v)) {
                if (r[u] || final_state.node_down[u] || link_down(v, u)) continue;
                r[u] = 1;
                frontier.push_back(u);
            }
        }
        return r;
    };

    rs.result.latency_hist.assign(latency_bounds().size() + 1, 0);
    for (std::size_t i = 0; i < rs.result.sessions.size(); ++i) {
        SessionOutcome& out = rs.result.sessions[i];
        const std::vector<char>& r = reach(out.source);
        out.up_count = up_count;
        out.reachable_count = 0;
        out.delivered_up = 0;
        out.missed_reachable = 0;
        for (NodeId v = 0; v < n; ++v) {
            if (final_state.node_down[v]) continue;
            const bool has = rs.bit(rs.received, i, v);
            if (has) ++out.delivered_up;
            if (r[v]) {
                ++out.reachable_count;
                if (!has) ++out.missed_reachable;
            }
        }
        // Same three-way rule as faults::classify_outcome.
        if (out.missed_reachable > 0) {
            out.outcome = faults::DeliveryOutcome::kDegraded;
            rs.result.degraded += 1;
        } else if (out.delivered_up < up_count) {
            out.outcome = faults::DeliveryOutcome::kPartitioned;
            rs.result.partitioned += 1;
        } else {
            out.outcome = faults::DeliveryOutcome::kDelivered;
            rs.result.delivered += 1;
        }

        // Completion latency: sessions with at least one remote delivery.
        if (out.last_delivery > out.start_time) {
            const double latency = out.last_delivery - out.start_time;
            const auto sample = static_cast<std::uint64_t>(std::ceil(latency));
            const auto& bounds = latency_bounds();
            std::size_t slot = bounds.size();
            for (std::size_t b = 0; b < bounds.size(); ++b) {
                if (sample <= bounds[b]) {
                    slot = b;
                    break;
                }
            }
            rs.result.latency_hist[slot] += 1;
            telemetry::observe(latency_metric(), sample);
        }
    }
}

TrafficResult TrafficEngine::run(const Workload& wl, Rng& rng) {
    RunState rs;
    rs.wl = &wl;
    rs.n = graph_->node_count();
    const std::size_t sessions = wl.arrivals.size();

    rs.caches.assign(rs.n, DupCache(config_.cache));
    const std::size_t words = (sessions * rs.n + 63) / 64;
    rs.received.assign(words, 0);
    rs.forwarded.assign(words, 0);
    rs.pulled.assign(words, 0);
    rs.repairs.assign(rs.n, 0);

    // Workload-derived sizing hint: every session eventually schedules its
    // arrival timer, and concurrent sessions keep roughly a propagation
    // window of forwards (avg-degree fanout each) pending at once.
    const std::size_t avg_degree = rs.n > 0 ? 2 * graph_->edge_count() / rs.n : 0;
    rs.queue.reserve(sessions + (plan_ != nullptr ? plan_->events.size() : 0) +
                     4 * (1 + avg_degree) * (1 + avg_degree));
    rs.packets.reserve(64 + 2 * (1 + avg_degree));
    rs.controls.reserve(64 + 2 * (1 + avg_degree));

    rs.session_of.assign(rs.n, {});
    rs.result.sessions.resize(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
        const SessionArrival& a = wl.arrivals[i];
        auto& row = rs.session_of[a.source];
        assert(a.seq == row.size());
        row.push_back(static_cast<std::uint32_t>(i));
        auto& out = rs.result.sessions[i];
        out.source = a.source;
        out.seq = a.seq;
        out.start_time = a.start_time;
        out.last_delivery = a.start_time;
    }

    if (plan_ != nullptr) {
        rs.fault.reset(*plan_, rs.n);
        for (std::size_t i = 0; i < plan_->events.size(); ++i) {
            const faults::FaultEvent& ev = plan_->events[i];
            rs.queue.push(ev.time, EventKind::kFault, ev.node, i);
        }
    }

    // Arrivals: kTimer with payload (i << 1).  Beacons: kTimer payload 1,
    // staggered across nodes so summaries do not all fire at one instant.
    for (std::size_t i = 0; i < sessions; ++i) {
        rs.queue.push(wl.arrivals[i].start_time, EventKind::kTimer, wl.arrivals[i].source,
                      i << 1);
    }
    const double beacon_stop = wl.horizon + config_.sv_slack;
    if (config_.recovery && config_.sv_interval > 0.0) {
        for (NodeId v = 0; v < rs.n; ++v) {
            const double first =
                config_.sv_interval * (1.0 + static_cast<double>(v) / static_cast<double>(rs.n));
            if (first <= beacon_stop) rs.queue.push(first, EventKind::kTimer, v, 1);
        }
    }

    while (!rs.queue.empty()) {
        const Event ev = rs.queue.pop();
        rs.result.completion_time = ev.time;
        switch (ev.kind) {
            case EventKind::kFault:
                rs.fault.apply(plan_->events[ev.payload]);
                break;
            case EventKind::kTimer: {
                if (ev.payload & 1) {
                    beacon(rs, ev.node, ev.time, rng);
                    const double next = ev.time + config_.sv_interval;
                    if (next <= beacon_stop) rs.queue.push(next, EventKind::kTimer, ev.node, 1);
                    break;
                }
                // Session arrival at its source.  The source stores its own
                // message even while crashed (the DTN store persists), so a
                // later recovery can still seed the summary-vector plane;
                // it only transmits when up.
                const std::size_t session = ev.payload >> 1;
                const SessionKey key = wl.key(session);
                rs.caches[ev.node].insert(key.source, key.seq);
                if (!rs.bit(rs.received, session, ev.node)) {
                    rs.set_bit(rs.received, session, ev.node);
                    rs.result.fresh_deliveries += 1;
                }
                if (rs.node_up(ev.node) && !rs.bit(rs.forwarded, session, ev.node)) {
                    rs.set_bit(rs.forwarded, session, ev.node);
                    rs.result.sessions[session].forwards += 1;
                    const NodeId hist[1] = {ev.node};
                    transmit_data(rs, static_cast<std::uint32_t>(session), ev.node,
                                  std::span<const NodeId>(hist, 1), ev.time, rng);
                }
                break;
            }
            case EventKind::kDelivery:
                deliver_data(rs, ev.node, rs.packets[ev.payload], ev.time, rng);
                break;
            case EventKind::kControl:
                deliver_control(rs, ev.node, ev.payload, ev.time, rng);
                break;
        }
    }

    for (const DupCache& cache : rs.caches) {
        rs.result.cache_evictions += cache.evictions();
        rs.result.window_slides += cache.window_slides();
        rs.result.cache_peak_bytes = std::max(rs.result.cache_peak_bytes, cache.peak_bytes());
    }
    rs.result.cache_ceiling_bytes = rs.caches.empty() ? 0 : rs.caches.front().ceiling_bytes();

    classify(rs);

    telemetry::count(kMetricSessions, sessions);
    telemetry::count(kMetricDeliveries, rs.result.fresh_deliveries);
    telemetry::count(kMetricDuplicates, rs.result.duplicates_suppressed);
    telemetry::count(kMetricDataTx, rs.result.data_transmissions);
    telemetry::count(kMetricDataBytes, rs.result.data_bytes);
    telemetry::count(kMetricBeacons, rs.result.sv_beacons);
    telemetry::count(kMetricControlBytes, rs.result.control_bytes);
    telemetry::count(kMetricPulls, rs.result.pulls_sent);
    telemetry::count(kMetricRepairs, rs.result.repairs_served);
    telemetry::count(kMetricEvictions, rs.result.cache_evictions);
    telemetry::gauge_sample(kMetricCacheBytes, rs.result.cache_peak_bytes);

    return std::move(rs.result);
}

}  // namespace adhoc::traffic
