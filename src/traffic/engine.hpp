/// \file engine.hpp
/// \brief The continuous-traffic engine: thousands of concurrent broadcast
/// sessions multiplexed through one long-lived network.
///
/// The one-shot `sim::Simulator` runs one broadcast per instance; a
/// saturation workload would construct thousands of simulators, agents and
/// RNG forks.  The `TrafficEngine` instead runs every session of a
/// `Workload` through **one** event queue over **one** topology:
///
///   - per-session state is two flat bit arenas (received / forwarded,
///     `sessions x nodes` bits) plus small per-session counters — no
///     per-session allocation;
///   - protocol decisions go through a shared `ForwardPolicy` (static
///     masks or the generic coverage kernel), built once per topology;
///   - duplicate suppression is the bounded per-node `DupCache` (LRU +
///     seq-window), replacing the one-shot `received` flag;
///   - the recovery plane beacons `SummaryVector`s on a HELLO cadence and
///     pulls advertised-but-missing sessions from the beaconing neighbor —
///     a targeted NACK/retransmit exchange with bounded budgets (each
///     (session, node) pulls at most once; each node serves at most
///     `pull_budget` repairs), so the event queue always drains;
///   - `src/faults/` plans apply unchanged: crash/recover and link churn
///     events gate every delivery, and each finished session is classified
///     delivered / degraded / partitioned against the final faulted
///     topology exactly like `faults::classify_outcome`.
///
/// Crash semantics: the duplicate cache models a persistent DTN-style
/// store, so a recovered node still holds (and re-advertises) what it had
/// before crashing — that store-carry-forward behavior is what lets
/// summary-vector exchange heal partitions the fault plan opens and
/// closes.  Determinism: a run is a pure function of (graph, policy,
/// config, workload, plan, rng seed); runs shard across threads at the
/// bench layer with one engine per run.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/fault_session.hpp"
#include "faults/outcome.hpp"
#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/medium.hpp"
#include "stats/rng.hpp"
#include "traffic/dup_cache.hpp"
#include "traffic/policy.hpp"
#include "traffic/summary_vector.hpp"
#include "traffic/workload.hpp"

namespace adhoc::traffic {

struct EngineConfig {
    MediumConfig medium;       ///< collision-free MAC (paper assumption 1)
    DupCacheConfig cache;
    std::size_t history = 2;   ///< piggybacked visited ids per data packet (max 4)

    bool recovery = true;      ///< summary-vector beacons + gap pulls
    double sv_interval = 4.0;  ///< beacon period (HELLO cadence)
    double sv_slack = 24.0;    ///< beacons continue this long past the last arrival
    std::size_t pull_batch = 16;   ///< max gap pulls sent per received beacon
    std::size_t pull_budget = 256; ///< max repairs served per node per run
};

/// Final accounting of one session (every session gets exactly one).
struct SessionOutcome {
    NodeId source = kInvalidNode;
    std::uint32_t seq = 0;
    double start_time = 0.0;
    faults::DeliveryOutcome outcome = faults::DeliveryOutcome::kDelivered;
    std::size_t up_count = 0;         ///< nodes up at end of run
    std::size_t reachable_count = 0;  ///< up nodes reachable from source (final topology)
    std::size_t delivered_up = 0;     ///< up nodes holding the session
    std::size_t missed_reachable = 0; ///< reachable up nodes without it
    double last_delivery = 0.0;       ///< time of the last fresh delivery
    std::size_t forwards = 0;         ///< nodes that relayed this session
};

/// Completion-latency histogram bucket upper bounds (simulated time units,
/// inclusive; one overflow bucket beyond).  Shared with the telemetry
/// metric and the saturation bench's percentile computation.
[[nodiscard]] const std::vector<std::uint64_t>& latency_bounds();

struct TrafficResult {
    std::vector<SessionOutcome> sessions;

    std::size_t delivered = 0;
    std::size_t degraded = 0;
    std::size_t partitioned = 0;

    std::size_t data_transmissions = 0;  ///< session packets put on the air
    std::size_t data_bytes = 0;
    std::size_t fresh_deliveries = 0;    ///< first receipts (includes sources)
    std::size_t duplicates_suppressed = 0;

    std::size_t sv_beacons = 0;
    std::size_t control_bytes = 0;       ///< beacon + pull-request bytes
    std::size_t pulls_sent = 0;          ///< gap ids requested
    std::size_t repairs_served = 0;      ///< targeted retransmissions sent

    std::size_t cache_evictions = 0;
    std::size_t window_slides = 0;
    std::size_t cache_peak_bytes = 0;    ///< max per-node cache footprint
    std::size_t cache_ceiling_bytes = 0; ///< configured per-node hard bound

    /// Session completion latency (last fresh delivery - start), bucketed
    /// per `latency_bounds()`; `bounds.size() + 1` slots.
    std::vector<std::uint64_t> latency_hist;

    double completion_time = 0.0;        ///< time of the last processed event
};

class TrafficEngine {
  public:
    /// `g` and `policy` must outlive the engine.
    TrafficEngine(const Graph& g, const ForwardPolicy& policy, EngineConfig config = {});

    /// Attaches a fault plan for subsequent runs (nullptr = fault-free).
    /// The plan must outlive the engine.
    void attach_faults(const faults::FaultPlan* plan) { plan_ = plan; }

    /// Runs every session of `wl` to completion.  Always terminates: all
    /// recovery budgets are bounded and beacons stop after the horizon.
    [[nodiscard]] TrafficResult run(const Workload& wl, Rng& rng);

  private:
    static constexpr std::size_t kMaxHistory = 4;

    struct Packet {
        std::uint32_t session = 0;
        NodeId sender = kInvalidNode;
        std::uint8_t hist_count = 0;
        std::array<NodeId, kMaxHistory> hist{};
    };

    struct Control {
        enum Type : std::uint8_t { kSummary, kPull };
        Type type = kSummary;
        NodeId sender = kInvalidNode;
        SummaryVector sv;               ///< kSummary
        std::vector<SessionKey> wants;  ///< kPull
    };

    struct RunState;  // defined in engine.cpp; one per run() call

    void transmit_data(RunState& rs, std::uint32_t session, NodeId sender,
                       std::span<const NodeId> hist, double now, Rng& rng);
    void deliver_data(RunState& rs, NodeId node, const Packet& packet, double now, Rng& rng);
    void beacon(RunState& rs, NodeId node, double now, Rng& rng);
    void deliver_control(RunState& rs, NodeId node, std::size_t index, double now, Rng& rng);
    void classify(RunState& rs);

    const Graph* graph_;
    const ForwardPolicy* policy_;
    EngineConfig config_;
    Medium medium_;
    const faults::FaultPlan* plan_ = nullptr;
};

}  // namespace adhoc::traffic
