#include "traffic/policy.hpp"

#include "algorithms/wu_li.hpp"
#include "core/view.hpp"
#include "sim/generic_protocol.hpp"

namespace adhoc::traffic {

CoveragePolicy::CoveragePolicy(const Graph& g, std::size_t hops, PriorityScheme priority,
                               CoverageOptions coverage, std::string name)
    : name_(name.empty() ? "Generic FR/SP" : std::move(name)),
      keys_(g, priority),
      coverage_(coverage),
      status_(g.node_count(), NodeStatus::kUnvisited) {
    views_.reserve(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        views_.push_back(local_topology(g, v, hops));
        compile_topology(views_.back());
    }
    touched_.reserve(8);
}

bool CoveragePolicy::should_forward(NodeId v, std::span<const NodeId> visited) const {
    for (const NodeId u : visited) {
        if (u < status_.size() && status_[u] == NodeStatus::kUnvisited) {
            status_[u] = NodeStatus::kVisited;
            touched_.push_back(u);
        }
    }
    const View view(&views_[v], &status_, &keys_);
    const bool covered = coverage_condition_holds(view, v, coverage_);
    for (const NodeId u : touched_) status_[u] = NodeStatus::kUnvisited;
    touched_.clear();
    return !covered;
}

std::unique_ptr<ForwardPolicy> make_policy(const Graph& g, const std::string& key) {
    if (key == "flooding") return std::make_unique<FloodingPolicy>();
    if (key == "generic-static") {
        const PriorityKeys keys(g, PriorityScheme::kNcr);
        return std::make_unique<StaticMaskPolicy>(
            "Generic Static", generic_static_forward_set(g, 2, keys, CoverageOptions{}));
    }
    if (key == "generic-fr") {
        return std::make_unique<CoveragePolicy>(g, 2, PriorityScheme::kDegree);
    }
    if (key == "wu-li") {
        return std::make_unique<StaticMaskPolicy>("Wu-Li", wu_li_forward_set(g, WuLiConfig{}));
    }
    return nullptr;
}

}  // namespace adhoc::traffic
