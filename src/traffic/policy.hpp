/// \file policy.hpp
/// \brief Per-topology forwarding policies shared by every concurrent
/// session — the allocation-storm fix of the traffic plane.
///
/// The one-shot path builds a full `GenericAgent` (views, priority keys,
/// per-node knowledge) *per broadcast*.  At thousands of concurrent
/// sessions that is an allocation storm: the protocol state that actually
/// depends on the topology — static forward sets, k-hop views, priority
/// keys — is identical for every session and only the tiny per-session
/// visited history differs.  A `ForwardPolicy` is that shared state built
/// exactly once per topology; the engine consults it per receipt with the
/// packet's piggybacked history, allocating nothing.
///
/// Three families cover the paper's taxonomy:
///   - flooding (always forward);
///   - static source-independent forward masks (the generic framework's
///     static special case via `generic_static_forward_set`, or any
///     `StaticCdsAlgorithm` mask such as Wu-Li);
///   - the dynamic first-receipt self-pruning rule, evaluating the
///     coverage condition against a precompiled k-hop view with the
///     packet's visited history — `generic_protocol`'s decision kernel
///     multiplexed over sessions through one reusable scratch buffer.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/priority.hpp"
#include "graph/graph.hpp"
#include "graph/khop.hpp"

namespace adhoc::traffic {

class ForwardPolicy {
  public:
    virtual ~ForwardPolicy() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Decision at the first receipt of one session's packet at `v`.
    /// `visited` is the packet's piggybacked history — nodes known to have
    /// forwarded this session (most recent last, sender included).  Must
    /// not allocate on the hot path; single-threaded per engine run.
    [[nodiscard]] virtual bool should_forward(NodeId v,
                                              std::span<const NodeId> visited) const = 0;
};

/// Always forward (the broadcast-storm baseline).
class FloodingPolicy final : public ForwardPolicy {
  public:
    [[nodiscard]] std::string name() const override { return "Flooding"; }
    [[nodiscard]] bool should_forward(NodeId, std::span<const NodeId>) const override {
        return true;
    }
};

/// Forward iff the node is in a precomputed source-independent mask.
class StaticMaskPolicy final : public ForwardPolicy {
  public:
    StaticMaskPolicy(std::string name, std::vector<char> mask)
        : name_(std::move(name)), mask_(std::move(mask)) {}

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] bool should_forward(NodeId v, std::span<const NodeId>) const override {
        return mask_[v] != 0;
    }
    [[nodiscard]] const std::vector<char>& mask() const noexcept { return mask_; }

  private:
    std::string name_;
    std::vector<char> mask_;
};

/// First-receipt self-pruning (the generic framework's FR/SP row): v
/// forwards unless the coverage condition holds under its k-hop view with
/// the packet's history marked visited.  Views and keys are built once;
/// each decision reuses one scratch status buffer.
class CoveragePolicy final : public ForwardPolicy {
  public:
    CoveragePolicy(const Graph& g, std::size_t hops, PriorityScheme priority,
                   CoverageOptions coverage = {}, std::string name = {});

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] bool should_forward(NodeId v,
                                      std::span<const NodeId> visited) const override;

  private:
    std::string name_;
    PriorityKeys keys_;
    CoverageOptions coverage_;
    std::vector<LocalTopology> views_;           ///< one compiled view per node
    mutable std::vector<NodeStatus> status_;     ///< scratch, size n
    mutable std::vector<NodeId> touched_;        ///< scratch undo list
};

/// Builds a policy by key: "flooding", "generic-static", "generic-fr",
/// "wu-li".  Returns nullptr for unknown keys.
[[nodiscard]] std::unique_ptr<ForwardPolicy> make_policy(const Graph& g,
                                                         const std::string& key);

}  // namespace adhoc::traffic
