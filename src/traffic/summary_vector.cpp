#include "traffic/summary_vector.hpp"

#include <algorithm>
#include <bit>

namespace adhoc::traffic {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

struct Reader {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos = 0;

    bool u16(std::uint16_t* v) {
        if (pos + 2 > size) return false;
        *v = static_cast<std::uint16_t>(data[pos] | (data[pos + 1] << 8));
        pos += 2;
        return true;
    }
    bool u32(std::uint32_t* v) {
        if (pos + 4 > size) return false;
        *v = 0;
        for (int i = 0; i < 4; ++i) *v |= std::uint32_t{data[pos + i]} << (8 * i);
        pos += 4;
        return true;
    }
    bool u64(std::uint64_t* v) {
        if (pos + 8 > size) return false;
        *v = 0;
        for (int i = 0; i < 8; ++i) *v |= std::uint64_t{data[pos + i]} << (8 * i);
        pos += 8;
        return true;
    }
};

}  // namespace

SummaryVector summarize(const DupCache& cache) {
    SummaryVector sv;
    for (const DupCache::Entry& e : cache.entries()) {
        SourceSummary s;
        s.source = e.source;
        s.base = e.base;
        s.bits = e.bits;
        while (!s.bits.empty() && s.bits.back() == 0) s.bits.pop_back();
        if (s.bits.empty()) continue;  // nothing held: nothing to advertise
        sv.sources.push_back(std::move(s));
    }
    std::sort(sv.sources.begin(), sv.sources.end(),
              [](const SourceSummary& a, const SourceSummary& b) { return a.source < b.source; });
    return sv;
}

std::size_t encoded_size(const SummaryVector& sv) {
    std::size_t bytes = 2;
    for (const SourceSummary& s : sv.sources) bytes += 4 + 4 + 2 + 8 * s.bits.size();
    return bytes;
}

std::vector<std::uint8_t> encode(const SummaryVector& sv) {
    std::vector<std::uint8_t> out;
    out.reserve(encoded_size(sv));
    put_u16(out, static_cast<std::uint16_t>(sv.sources.size()));
    for (const SourceSummary& s : sv.sources) {
        put_u32(out, s.source);
        put_u32(out, s.base);
        put_u16(out, static_cast<std::uint16_t>(s.bits.size()));
        for (const std::uint64_t w : s.bits) put_u64(out, w);
    }
    return out;
}

bool decode(const std::uint8_t* data, std::size_t size, SummaryVector* out) {
    Reader r{data, size};
    std::uint16_t count = 0;
    if (!r.u16(&count)) return false;
    out->sources.clear();
    out->sources.reserve(count);
    NodeId prev = kInvalidNode;
    for (std::uint16_t i = 0; i < count; ++i) {
        SourceSummary s;
        std::uint16_t words = 0;
        if (!r.u32(&s.source) || !r.u32(&s.base) || !r.u16(&words)) return false;
        if (i > 0 && s.source <= prev) return false;  // must be sorted, unique
        prev = s.source;
        s.bits.resize(words);
        for (std::uint16_t w = 0; w < words; ++w) {
            if (!r.u64(&s.bits[w])) return false;
        }
        out->sources.push_back(std::move(s));
    }
    return r.pos == size;
}

std::vector<SessionKey> advertised_keys(const SummaryVector& sv) {
    std::vector<SessionKey> keys;
    for (const SourceSummary& s : sv.sources) {
        for (std::size_t w = 0; w < s.bits.size(); ++w) {
            std::uint64_t word = s.bits[w];
            while (word != 0) {
                const int bit = std::countr_zero(word);
                word &= word - 1;
                keys.push_back(
                    SessionKey{s.source, s.base + static_cast<std::uint32_t>(64 * w + bit)});
            }
        }
    }
    return keys;
}

std::vector<SessionKey> missing_keys(const SummaryVector& theirs, const DupCache& mine,
                                     std::size_t limit) {
    std::vector<SessionKey> missing;
    for (const SourceSummary& s : theirs.sources) {
        for (std::size_t w = 0; w < s.bits.size(); ++w) {
            std::uint64_t word = s.bits[w];
            while (word != 0) {
                const int bit = std::countr_zero(word);
                word &= word - 1;
                const std::uint32_t seq = s.base + static_cast<std::uint32_t>(64 * w + bit);
                if (!mine.holds(s.source, seq)) {
                    missing.push_back(SessionKey{s.source, seq});
                    if (limit != 0 && missing.size() >= limit) return missing;
                }
            }
        }
    }
    return missing;
}

}  // namespace adhoc::traffic
