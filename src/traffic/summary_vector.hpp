/// \file summary_vector.hpp
/// \brief DTN-style summary vectors: compact advertisements of the
/// `(source, seq)` ids a node currently holds.
///
/// Epidemic/DTN routing reconciles stores by exchanging *summary vectors*
/// — bitmaps of held message ids — and pulling the gaps.  The traffic
/// plane piggybacks the same idea on periodic HELLO-cadence beacons: each
/// node advertises, per source, the base sequence number and the window
/// bitmap of its duplicate cache; a neighbor diffs the advertisement
/// against its own cache and pulls missing sessions through the
/// NACK/retransmit machinery (engine.cpp), which is what lets delivery
/// recover across churn and healed partitions.
///
/// Wire format (little-endian, documented in docs/TRAFFIC.md):
///
///   u16 source_count
///   repeated source_count times:
///     u32 source id
///     u32 window base sequence
///     u16 word_count            (64-bit bitmap words, trailing zeros trimmed)
///     u64 * word_count bitmap
///
/// Sources are sorted ascending, so the encoding of a given store state is
/// canonical — byte-identical across runs and job counts.

#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "traffic/dup_cache.hpp"

namespace adhoc::traffic {

/// A `(source, seq)` broadcast-session identifier.
struct SessionKey {
    NodeId source = kInvalidNode;
    std::uint32_t seq = 0;

    friend constexpr auto operator<=>(const SessionKey&, const SessionKey&) = default;
};

/// One source's advertised window.
struct SourceSummary {
    NodeId source = kInvalidNode;
    std::uint32_t base = 0;
    std::vector<std::uint64_t> bits;  ///< trailing zero words trimmed

    friend bool operator==(const SourceSummary&, const SourceSummary&) = default;
};

/// Everything one node advertises in one beacon.
struct SummaryVector {
    std::vector<SourceSummary> sources;  ///< sorted by source id

    friend bool operator==(const SummaryVector&, const SummaryVector&) = default;
};

/// Builds the canonical advertisement of a cache's current holdings.
/// Empty windows are skipped; sources are sorted; trailing zero words are
/// trimmed (they carry no ids and would only inflate the wire size).
[[nodiscard]] SummaryVector summarize(const DupCache& cache);

/// Exact wire size of `encode(sv)` in bytes — the per-beacon byte cost the
/// engine meters.
[[nodiscard]] std::size_t encoded_size(const SummaryVector& sv);

[[nodiscard]] std::vector<std::uint8_t> encode(const SummaryVector& sv);

/// Strict decoder: rejects truncated buffers, trailing garbage, unsorted
/// or duplicate sources.  Returns false leaving `out` unspecified.
[[nodiscard]] bool decode(const std::uint8_t* data, std::size_t size, SummaryVector* out);

/// Every id the vector advertises, in (source, seq) order.
[[nodiscard]] std::vector<SessionKey> advertised_keys(const SummaryVector& sv);

/// Ids advertised by `theirs` that `mine` does not hold — the gaps a node
/// pulls after hearing a neighbor's beacon.  Capped at `limit` (0 = all).
[[nodiscard]] std::vector<SessionKey> missing_keys(const SummaryVector& theirs,
                                                   const DupCache& mine,
                                                   std::size_t limit = 0);

}  // namespace adhoc::traffic
