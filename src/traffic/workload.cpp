#include "traffic/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "runner/seed.hpp"
#include "stats/rng.hpp"

namespace adhoc::traffic {

Workload make_workload(const TrafficConfig& config, std::size_t node_count,
                       std::uint64_t base_seed, std::uint64_t run_index) {
    assert(node_count > 0);
    // Dedicated substream tag: workload draws never share state with the
    // simulation RNG or the fault-plan stream.
    Rng rng(runner::derive_run_seed(base_seed ^ 0x7af1cc0adULL, node_count, config.rate,
                                    run_index));

    // Eligible sources: a deterministic partial shuffle of [0, n).
    std::vector<NodeId> sources(node_count);
    for (NodeId v = 0; v < node_count; ++v) sources[v] = v;
    std::size_t eligible = node_count;
    if (config.source_count > 0 && config.source_count < node_count) {
        eligible = config.source_count;
        for (std::size_t i = 0; i < eligible; ++i) {
            const std::size_t j = i + rng.index(node_count - i);
            std::swap(sources[i], sources[j]);
        }
    }
    sources.resize(eligible);

    const double rate = config.rate > 0.0 ? config.rate : 1.0;
    const double cycle = config.burst_on + config.burst_off;

    Workload wl;
    wl.arrivals.reserve(config.sessions);
    std::vector<std::uint32_t> next_seq(node_count, 0);
    double t = 0.0;
    for (std::size_t i = 0; i < config.sessions; ++i) {
        if (config.process == ArrivalProcess::kPoisson) {
            t += -std::log(1.0 - rng.uniform()) / rate;
        } else {
            // Bursty: exponential gaps at the boosted rate, but any arrival
            // landing in an off-phase jumps to the next on-phase start.
            t += -std::log(1.0 - rng.uniform()) / (rate * config.burst_factor);
            if (cycle > 0.0 && config.burst_off > 0.0) {
                const double phase = t - std::floor(t / cycle) * cycle;
                if (phase >= config.burst_on) t += cycle - phase;
            }
        }
        SessionArrival arrival;
        arrival.source = sources[rng.index(sources.size())];
        arrival.seq = next_seq[arrival.source]++;
        arrival.start_time = t;
        wl.arrivals.push_back(arrival);
    }
    wl.horizon = t;
    return wl;
}

}  // namespace adhoc::traffic
