/// \file workload.hpp
/// \brief Deterministic, seed-derived traffic generation: Poisson or
/// bursty arrival processes over configurable source sets.
///
/// A workload is the full arrival schedule of one run — every session's
/// `(source, seq)` identity and start time, fixed before the run begins.
/// Generation follows the campaign runner's determinism contract: the
/// schedule is a pure function of (base seed, node count, rate, run index)
/// via `runner::derive_run_seed` substreams, so a saturation campaign is
/// bit-identical at any `--jobs` value and a fuzz scenario replays its
/// traffic exactly.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "traffic/summary_vector.hpp"

namespace adhoc::traffic {

enum class ArrivalProcess : std::uint8_t {
    kPoisson,  ///< exponential inter-arrival gaps at `rate`
    kBursty,   ///< on/off phases; arrivals only during on, at `rate * burst_factor`
};

struct TrafficConfig {
    ArrivalProcess process = ArrivalProcess::kPoisson;
    double rate = 1.0;            ///< mean network-wide session arrivals per time unit
    std::size_t sessions = 1000;  ///< total sessions to schedule
    std::size_t source_count = 0; ///< distinct eligible sources (0 = every node)
    double burst_on = 5.0;        ///< bursty: on-phase length
    double burst_off = 15.0;      ///< bursty: off-phase length
    double burst_factor = 6.0;    ///< bursty: rate multiplier inside a burst
};

/// One scheduled session.  `seq` counts per source, starting at 0.
struct SessionArrival {
    NodeId source = kInvalidNode;
    std::uint32_t seq = 0;
    double start_time = 0.0;

    friend bool operator==(const SessionArrival&, const SessionArrival&) = default;
};

struct Workload {
    std::vector<SessionArrival> arrivals;  ///< ascending start_time
    double horizon = 0.0;                  ///< last arrival time

    [[nodiscard]] SessionKey key(std::size_t i) const {
        return SessionKey{arrivals[i].source, arrivals[i].seq};
    }
};

/// Generates the schedule.  Pure function of its arguments; sources are a
/// deterministic subset of [0, node_count) when `source_count` is set.
[[nodiscard]] Workload make_workload(const TrafficConfig& config, std::size_t node_count,
                                     std::uint64_t base_seed, std::uint64_t run_index);

}  // namespace adhoc::traffic
