#include "verify/cds_check.hpp"

#include <sstream>

#include "graph/traversal.hpp"

namespace adhoc {

std::size_t set_size(const std::vector<char>& set) {
    std::size_t n = 0;
    for (char c : set) n += (c != 0);
    return n;
}

bool is_dominating_set(const Graph& g, const std::vector<char>& set) {
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (set[v]) continue;
        bool dominated = false;
        for (NodeId u : g.neighbors(v)) {
            if (set[u]) {
                dominated = true;
                break;
            }
        }
        if (!dominated) return false;
    }
    return true;
}

bool is_connected_set(const Graph& g, const std::vector<char>& set) {
    NodeId start = kInvalidNode;
    std::size_t members = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (set[v]) {
            ++members;
            if (start == kInvalidNode) start = v;
        }
    }
    if (members <= 1) return true;
    const auto dist = bfs_distances_filtered(g, start, set);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (set[v] && dist[v] == kUnreachable) return false;
    }
    return true;
}

bool is_cds(const Graph& g, const std::vector<char>& set) {
    return is_dominating_set(g, set) && is_connected_set(g, set);
}

CdsVerdict check_cds(const Graph& g, const std::vector<char>& set) {
    CdsVerdict verdict;
    verdict.dominating = true;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (set[v]) continue;
        bool dominated = false;
        for (NodeId u : g.neighbors(v)) {
            if (set[u]) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            verdict.dominating = false;
            verdict.undominated_witness = v;
            break;
        }
    }
    verdict.connected = is_connected_set(g, set);
    return verdict;
}

std::string CdsVerdict::describe() const {
    std::ostringstream out;
    out << "dominating=" << (dominating ? "yes" : "no")
        << " connected=" << (connected ? "yes" : "no");
    if (undominated_witness != kInvalidNode) {
        out << " (node " << undominated_witness << " undominated)";
    }
    return out.str();
}

bool covers_source_component(const Graph& g, NodeId source,
                             const std::vector<char>& received) {
    const auto dist = bfs_distances(g, source);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (dist[v] != kUnreachable && !received[v]) return false;
    }
    return true;
}

BroadcastVerdict check_broadcast(const Graph& g, NodeId source, const BroadcastResult& result) {
    BroadcastVerdict verdict;
    verdict.full_delivery = result.full_delivery;
    verdict.source_transmitted = result.transmitted[source] != 0;
    verdict.cds = check_cds(g, result.transmitted);
    return verdict;
}

}  // namespace adhoc
