/// \file cds_check.hpp
/// \brief Connected-dominating-set verification (Theorems 1 and 2).
///
/// The paper's correctness claim is that the visited nodes at the end of
/// any broadcast form a CDS.  Tests run these checks on every algorithm
/// over hundreds of random topologies.

#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace adhoc {

/// True iff every node is in `set` or adjacent to a node in `set`.
[[nodiscard]] bool is_dominating_set(const Graph& g, const std::vector<char>& set);

/// True iff the subgraph induced on `set` is connected (vacuously true for
/// empty or singleton sets).
[[nodiscard]] bool is_connected_set(const Graph& g, const std::vector<char>& set);

/// True iff `set` is a connected dominating set of `g`.
[[nodiscard]] bool is_cds(const Graph& g, const std::vector<char>& set);

/// Detailed verdict for diagnostics.
struct CdsVerdict {
    bool dominating = false;
    bool connected = false;
    NodeId undominated_witness = kInvalidNode;  ///< a node with no dominator
    [[nodiscard]] bool ok() const noexcept { return dominating && connected; }
    [[nodiscard]] std::string describe() const;
};

[[nodiscard]] CdsVerdict check_cds(const Graph& g, const std::vector<char>& set);

/// Checks a broadcast outcome end to end:
///  - full delivery (every node received),
///  - the transmitting set is a CDS (when `expect_cds`),
///  - the source transmitted.
struct BroadcastVerdict {
    bool full_delivery = false;
    bool source_transmitted = false;
    CdsVerdict cds;
    [[nodiscard]] bool ok(bool expect_cds = true) const noexcept {
        return full_delivery && source_transmitted && (!expect_cds || cds.ok());
    }
};

[[nodiscard]] BroadcastVerdict check_broadcast(const Graph& g, NodeId source,
                                               const BroadcastResult& result);

/// Size of a set mask.
[[nodiscard]] std::size_t set_size(const std::vector<char>& set);

/// True iff every node in `source`'s connected component is marked in
/// `received` — the correct delivery criterion on (possibly) disconnected
/// topologies, where nodes in other components are unreachable by any
/// algorithm.
[[nodiscard]] bool covers_source_component(const Graph& g, NodeId source,
                                           const std::vector<char>& received);

}  // namespace adhoc
