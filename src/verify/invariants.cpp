#include "verify/invariants.hpp"

#include <sstream>

namespace adhoc {

std::string InvariantReport::describe() const {
    if (ok) return "all invariants hold";
    std::ostringstream out;
    for (const auto& v : violations) out << v << '\n';
    return out.str();
}

InvariantReport check_invariants(const Graph& g, NodeId source, const BroadcastResult& result) {
    InvariantReport report;
    const auto& events = result.trace.events();

    std::vector<std::size_t> tx_count(g.node_count(), 0);
    std::vector<char> has_received(g.node_count(), 0);
    std::vector<char> has_transmitted(g.node_count(), 0);
    double last_time = 0.0;

    for (const TraceEvent& e : events) {
        if (e.time + 1e-12 < last_time) {
            report.fail("I4: time went backwards at t=" + std::to_string(e.time));
        }
        last_time = std::max(last_time, e.time);

        switch (e.kind) {
            case TraceKind::kTransmit:
                ++tx_count[e.node];
                if (tx_count[e.node] > 1) {
                    report.fail("I1: node " + std::to_string(e.node) + " transmitted twice");
                }
                if (e.node != source && !has_received[e.node]) {
                    report.fail("I2: node " + std::to_string(e.node) +
                                " transmitted before receiving");
                }
                has_transmitted[e.node] = 1;
                break;
            case TraceKind::kReceive: {
                if (e.other == kInvalidNode || !g.has_edge(e.node, e.other)) {
                    report.fail("I3: node " + std::to_string(e.node) +
                                " received from non-neighbor " + std::to_string(e.other));
                } else if (!has_transmitted[e.other]) {
                    report.fail("I3: node " + std::to_string(e.node) +
                                " received from silent node " + std::to_string(e.other));
                }
                has_received[e.node] = 1;
                break;
            }
            case TraceKind::kRetransmit:
                // A recovery repair is legal from any holder; it makes the
                // node a valid sender for later receives (I3) but is not a
                // forward decision, so I1/I5 ignore it.
                has_transmitted[e.node] = 1;
                break;
            case TraceKind::kPrune:
            case TraceKind::kDesignate:
            case TraceKind::kControl:
                break;
        }
    }

    // I5: masks agree with trace.
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const bool mask_tx = result.transmitted[v] != 0;
        if (mask_tx != (tx_count[v] > 0)) {
            report.fail("I5: transmitted mask mismatch at node " + std::to_string(v));
        }
        const bool mask_rx = result.received[v] != 0;
        const bool trace_rx = has_received[v] || tx_count[v] > 0;  // senders hold the packet
        if (mask_rx != trace_rx) {
            report.fail("I5: received mask mismatch at node " + std::to_string(v));
        }
    }
    return report;
}

}  // namespace adhoc
