/// \file invariants.hpp
/// \brief Trace-level invariants of any well-formed broadcast run.
///
/// Checked by property tests across all algorithms:
///  I1. a node transmits at most once (flooding discipline);
///  I2. every non-source transmission is preceded by a receipt at that node;
///  I3. every receipt is preceded by a transmission of a graph-neighbor;
///  I4. event times are non-decreasing in trace order;
///  I5. the transmitted/received masks agree with the trace.

#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace adhoc {

struct InvariantReport {
    bool ok = true;
    std::vector<std::string> violations;

    void fail(std::string what) {
        ok = false;
        violations.push_back(std::move(what));
    }
    [[nodiscard]] std::string describe() const;
};

/// Validates a traced broadcast result against the invariants above.
/// Requires the result to have been produced with tracing enabled.
[[nodiscard]] InvariantReport check_invariants(const Graph& g, NodeId source,
                                               const BroadcastResult& result);

}  // namespace adhoc
