// Unit tests for incremental virtual-backbone maintenance.

#include "core/backbone.hpp"

#include <gtest/gtest.h>

#include "graph/traversal.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

std::vector<char> full_recompute(const Graph& g, std::size_t hops, PriorityScheme priority) {
    const PriorityKeys keys(g, priority);
    return generic_static_forward_set(g, hops, keys, {});
}

TEST(Backbone, InitialSetMatchesDirectComputation) {
    const Graph g = grid_graph(4, 5);
    const Backbone backbone(g, 2);
    EXPECT_EQ(backbone.forward_set(), full_recompute(g, 2, PriorityScheme::kId));
    EXPECT_TRUE(is_cds(g, backbone.forward_set()));
}

TEST(Backbone, AddEdgeMatchesFullRecompute) {
    Graph g = cycle_graph(10);
    Backbone backbone(g, 2);
    ASSERT_TRUE(backbone.add_edge(0, 5));
    g.add_edge(0, 5);
    EXPECT_EQ(backbone.forward_set(), full_recompute(g, 2, PriorityScheme::kId));
}

TEST(Backbone, RemoveEdgeMatchesFullRecompute) {
    Graph g = grid_graph(4, 4);
    Backbone backbone(g, 2);
    ASSERT_TRUE(backbone.remove_edge(5, 6));
    g.remove_edge(5, 6);
    EXPECT_EQ(backbone.forward_set(), full_recompute(g, 2, PriorityScheme::kId));
    EXPECT_TRUE(is_cds(g, backbone.forward_set()));  // grid stays connected
}

TEST(Backbone, NoOpEdgesReturnFalse) {
    Backbone backbone(path_graph(4), 2);
    EXPECT_FALSE(backbone.add_edge(0, 1));     // already present
    EXPECT_FALSE(backbone.remove_edge(0, 2));  // absent
}

class BackboneChurn : public ::testing::TestWithParam<PriorityScheme> {};

TEST_P(BackboneChurn, RandomChurnStaysIdenticalToFullRecompute) {
    Rng rng(307);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);

    for (std::size_t hops : {2u, 3u}) {
        Graph g = net.graph;
        Backbone backbone(g, hops, GetParam());
        Rng churn(11);
        for (int step = 0; step < 30; ++step) {
            const NodeId u = static_cast<NodeId>(churn.index(g.node_count()));
            const NodeId v = static_cast<NodeId>(churn.index(g.node_count()));
            if (u == v) continue;
            if (g.has_edge(u, v)) {
                g.remove_edge(u, v);
                ASSERT_TRUE(backbone.remove_edge(u, v));
            } else {
                g.add_edge(u, v);
                ASSERT_TRUE(backbone.add_edge(u, v));
            }
            ASSERT_EQ(backbone.forward_set(), full_recompute(g, hops, GetParam()))
                << "step " << step << " hops " << hops;
            if (is_connected(g)) {
                EXPECT_TRUE(is_cds(g, backbone.forward_set())) << "step " << step;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Priorities, BackboneChurn,
                         ::testing::Values(PriorityScheme::kId, PriorityScheme::kDegree,
                                           PriorityScheme::kNcr),
                         [](const ::testing::TestParamInfo<PriorityScheme>& info) {
                             return to_string(info.param);
                         });

TEST(Backbone, IncrementalTouchesFewNodesOnLargeNetworks) {
    Rng rng(311);
    UnitDiskParams params;
    params.node_count = 150;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    Backbone backbone(net.graph, 2);

    // Flip one random existing edge.
    const auto edges = net.graph.edges();
    const Edge e = edges[rng.index(edges.size())];
    ASSERT_TRUE(backbone.remove_edge(e.a, e.b));
    EXPECT_LT(backbone.last_reevaluated(), net.graph.node_count() / 2)
        << "incremental update re-evaluated most of the network";
    EXPECT_GT(backbone.last_reevaluated(), 0u);
}

TEST(Backbone, StrongCoverageVariantAlsoMaintained) {
    Rng rng(313);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    Graph g = net.graph;
    const CoverageOptions strong{.strong = true};
    Backbone backbone(g, 2, PriorityScheme::kDegree, strong);

    const PriorityKeys keys0(g, PriorityScheme::kDegree);
    EXPECT_EQ(backbone.forward_set(), generic_static_forward_set(g, 2, keys0, strong));

    Rng churn(5);
    for (int step = 0; step < 10; ++step) {
        const NodeId u = static_cast<NodeId>(churn.index(g.node_count()));
        const NodeId v = static_cast<NodeId>(churn.index(g.node_count()));
        if (u == v) continue;
        if (g.has_edge(u, v)) {
            g.remove_edge(u, v);
            backbone.remove_edge(u, v);
        } else {
            g.add_edge(u, v);
            backbone.add_edge(u, v);
        }
        const PriorityKeys keys(g, PriorityScheme::kDegree);
        ASSERT_EQ(backbone.forward_set(), generic_static_forward_set(g, 2, keys, strong))
            << "step " << step;
    }
}

TEST(Backbone, GlobalViewsFallBackToFullRecompute) {
    Backbone backbone(cycle_graph(8), 0);
    ASSERT_TRUE(backbone.add_edge(0, 4));
    EXPECT_EQ(backbone.last_reevaluated(), 8u);
    Graph g = cycle_graph(8);
    g.add_edge(0, 4);
    EXPECT_EQ(backbone.forward_set(), full_recompute(g, 0, PriorityScheme::kId));
}

}  // namespace
}  // namespace adhoc
