// Unit tests for the CDS verifier.

#include "verify/cds_check.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(CdsCheck, StarCenterIsCds) {
    const Graph g = star_graph(5);
    std::vector<char> set(5, 0);
    set[0] = 1;
    EXPECT_TRUE(is_dominating_set(g, set));
    EXPECT_TRUE(is_connected_set(g, set));
    EXPECT_TRUE(is_cds(g, set));
}

TEST(CdsCheck, LeafOnlyIsNotDominating) {
    const Graph g = star_graph(5);
    std::vector<char> set(5, 0);
    set[1] = 1;
    EXPECT_FALSE(is_dominating_set(g, set));  // leaves 2..4 undominated
}

TEST(CdsCheck, DisconnectedDominatorsRejected) {
    const Graph g = path_graph(6);  // 0..5
    std::vector<char> set(6, 0);
    set[1] = set[4] = 1;  // dominate everything but not connected
    EXPECT_TRUE(is_dominating_set(g, set));
    EXPECT_FALSE(is_connected_set(g, set));
    EXPECT_FALSE(is_cds(g, set));
}

TEST(CdsCheck, PathInteriorIsCds) {
    const Graph g = path_graph(6);
    std::vector<char> set{0, 1, 1, 1, 1, 0};
    EXPECT_TRUE(is_cds(g, set));
}

TEST(CdsCheck, EmptySetOnNonTrivialGraphFails) {
    const Graph g = path_graph(3);
    std::vector<char> set(3, 0);
    EXPECT_FALSE(is_dominating_set(g, set));
    EXPECT_TRUE(is_connected_set(g, set));  // vacuous
}

TEST(CdsCheck, SingletonSetIsConnected) {
    const Graph g = path_graph(3);
    std::vector<char> set{0, 1, 0};
    EXPECT_TRUE(is_connected_set(g, set));
    EXPECT_TRUE(is_cds(g, set));
}

TEST(CdsCheck, VerdictReportsWitness) {
    const Graph g = path_graph(5);
    std::vector<char> set(5, 0);
    set[0] = 1;
    const auto verdict = check_cds(g, set);
    EXPECT_FALSE(verdict.ok());
    EXPECT_FALSE(verdict.dominating);
    EXPECT_NE(verdict.undominated_witness, kInvalidNode);
    EXPECT_NE(verdict.describe().find("undominated"), std::string::npos);
}

TEST(CdsCheck, SetSize) {
    EXPECT_EQ(set_size({1, 0, 1, 1}), 3u);
    EXPECT_EQ(set_size({}), 0u);
}

// Negative-path tests: the verifier must reject specific broken inputs
// with the right diagnostic, not merely "not ok".

TEST(CdsCheck, DisconnectedForwardSetDiagnostic) {
    const Graph g = path_graph(7);  // 0..6
    std::vector<char> set(7, 0);
    set[1] = set[2] = set[4] = set[5] = 1;  // two islands: {1,2} and {4,5}
    EXPECT_TRUE(is_dominating_set(g, set));
    const auto verdict = check_cds(g, set);
    EXPECT_FALSE(verdict.ok());
    EXPECT_TRUE(verdict.dominating);
    EXPECT_FALSE(verdict.connected);
    EXPECT_EQ(verdict.undominated_witness, kInvalidNode);  // domination holds
    EXPECT_NE(verdict.describe().find("connected=no"), std::string::npos);
}

TEST(CdsCheck, UndominatedWitnessIsActuallyUndominated) {
    const Graph g = path_graph(6);
    std::vector<char> set(6, 0);
    set[0] = set[1] = 1;  // nodes 3, 4, 5 have no dominator
    const auto verdict = check_cds(g, set);
    EXPECT_FALSE(verdict.dominating);
    const NodeId w = verdict.undominated_witness;
    ASSERT_NE(w, kInvalidNode);
    EXPECT_FALSE(set[w]);
    for (NodeId u : g.neighbors(w)) EXPECT_FALSE(set[u]) << "witness is dominated";
    EXPECT_NE(verdict.describe().find("undominated"), std::string::npos);
}

TEST(CdsCheck, BroadcastVerdictRejectsPartialDelivery) {
    const Graph g = path_graph(4);
    BroadcastResult result;
    result.transmitted = {1, 1, 1, 0};
    result.received = {1, 1, 1, 0};  // node 3 never reached
    result.received_count = 3;
    result.full_delivery = false;
    const auto verdict = check_broadcast(g, 0, result);
    EXPECT_FALSE(verdict.ok());
    EXPECT_FALSE(verdict.full_delivery);
    EXPECT_TRUE(verdict.source_transmitted);
}

TEST(CdsCheck, BroadcastVerdictRejectsNonCdsForwardSet) {
    const Graph g = path_graph(5);
    BroadcastResult result;
    result.transmitted = {1, 0, 0, 0, 1};  // source and far end: not connected
    result.received = {1, 1, 1, 1, 1};
    result.received_count = 5;
    result.full_delivery = true;
    const auto verdict = check_broadcast(g, 0, result);
    EXPECT_FALSE(verdict.ok());
    EXPECT_TRUE(verdict.full_delivery);
    EXPECT_FALSE(verdict.cds.ok());
    EXPECT_FALSE(verdict.cds.connected);
}

TEST(CdsCheck, CoversSourceComponentIgnoresOtherComponents) {
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(3, 4);  // unreachable component
    EXPECT_TRUE(covers_source_component(g, 0, {1, 1, 1, 0, 0}));
    EXPECT_FALSE(covers_source_component(g, 0, {1, 0, 1, 0, 0}));  // 1 missed
    EXPECT_FALSE(covers_source_component(g, 3, {0, 0, 0, 1, 0}));  // 4 missed
}

TEST(CdsCheck, BroadcastVerdictIntegration) {
    const Graph g = star_graph(4);
    BroadcastResult result;
    result.transmitted = {1, 0, 0, 0};
    result.received = {1, 1, 1, 1};
    result.received_count = 4;
    result.full_delivery = true;
    const auto verdict = check_broadcast(g, 0, result);
    EXPECT_TRUE(verdict.ok());

    BroadcastResult bad = result;
    bad.transmitted = {0, 1, 0, 0};  // source silent
    const auto v2 = check_broadcast(g, 0, bad);
    EXPECT_FALSE(v2.ok());
    EXPECT_FALSE(v2.source_transmitted);
}

}  // namespace
}  // namespace adhoc
