// Unit tests for the CDS verifier.

#include "verify/cds_check.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(CdsCheck, StarCenterIsCds) {
    const Graph g = star_graph(5);
    std::vector<char> set(5, 0);
    set[0] = 1;
    EXPECT_TRUE(is_dominating_set(g, set));
    EXPECT_TRUE(is_connected_set(g, set));
    EXPECT_TRUE(is_cds(g, set));
}

TEST(CdsCheck, LeafOnlyIsNotDominating) {
    const Graph g = star_graph(5);
    std::vector<char> set(5, 0);
    set[1] = 1;
    EXPECT_FALSE(is_dominating_set(g, set));  // leaves 2..4 undominated
}

TEST(CdsCheck, DisconnectedDominatorsRejected) {
    const Graph g = path_graph(6);  // 0..5
    std::vector<char> set(6, 0);
    set[1] = set[4] = 1;  // dominate everything but not connected
    EXPECT_TRUE(is_dominating_set(g, set));
    EXPECT_FALSE(is_connected_set(g, set));
    EXPECT_FALSE(is_cds(g, set));
}

TEST(CdsCheck, PathInteriorIsCds) {
    const Graph g = path_graph(6);
    std::vector<char> set{0, 1, 1, 1, 1, 0};
    EXPECT_TRUE(is_cds(g, set));
}

TEST(CdsCheck, EmptySetOnNonTrivialGraphFails) {
    const Graph g = path_graph(3);
    std::vector<char> set(3, 0);
    EXPECT_FALSE(is_dominating_set(g, set));
    EXPECT_TRUE(is_connected_set(g, set));  // vacuous
}

TEST(CdsCheck, SingletonSetIsConnected) {
    const Graph g = path_graph(3);
    std::vector<char> set{0, 1, 0};
    EXPECT_TRUE(is_connected_set(g, set));
    EXPECT_TRUE(is_cds(g, set));
}

TEST(CdsCheck, VerdictReportsWitness) {
    const Graph g = path_graph(5);
    std::vector<char> set(5, 0);
    set[0] = 1;
    const auto verdict = check_cds(g, set);
    EXPECT_FALSE(verdict.ok());
    EXPECT_FALSE(verdict.dominating);
    EXPECT_NE(verdict.undominated_witness, kInvalidNode);
    EXPECT_NE(verdict.describe().find("undominated"), std::string::npos);
}

TEST(CdsCheck, SetSize) {
    EXPECT_EQ(set_size({1, 0, 1, 1}), 3u);
    EXPECT_EQ(set_size({}), 0u);
}

TEST(CdsCheck, BroadcastVerdictIntegration) {
    const Graph g = star_graph(4);
    BroadcastResult result;
    result.transmitted = {1, 0, 0, 0};
    result.received = {1, 1, 1, 1};
    result.received_count = 4;
    result.full_delivery = true;
    const auto verdict = check_broadcast(g, 0, result);
    EXPECT_TRUE(verdict.ok());

    BroadcastResult bad = result;
    bad.transmitted = {0, 1, 0, 0};  // source silent
    const auto v2 = check_broadcast(g, 0, bad);
    EXPECT_FALSE(v2.ok());
    EXPECT_FALSE(v2.source_transmitted);
}

}  // namespace
}  // namespace adhoc
