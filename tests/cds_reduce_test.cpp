// Unit tests for coverage-condition CDS post-reduction (Section 1 claim).

#include "core/cds_reduce.hpp"

#include <gtest/gtest.h>

#include "algorithms/clustering.hpp"
#include "algorithms/guha_khuller.hpp"
#include "algorithms/wu_li.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(CdsReduce, NeverGrowsTheSet) {
    Rng rng(173);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    const auto cds = cluster_cds(net.graph);
    const auto reduced = reduce_cds(net.graph, cds);
    for (NodeId v = 0; v < 50; ++v) {
        if (reduced[v]) EXPECT_TRUE(cds[v]);
    }
    EXPECT_LE(set_size(reduced), set_size(cds));
}

TEST(CdsReduce, OutputIsStillCds) {
    Rng rng(179);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    for (int i = 0; i < 15; ++i) {
        const auto net = generate_network_checked(params, rng);
        for (const auto& cds :
             {cluster_cds(net.graph), guha_khuller_cds(net.graph),
              wu_li_forward_set(net.graph, {})}) {
            ASSERT_TRUE(is_cds(net.graph, cds));
            for (std::size_t k : {0u, 2u, 3u}) {
                const auto reduced = reduce_cds(net.graph, cds, k);
                EXPECT_TRUE(is_cds(net.graph, reduced))
                    << "iteration " << i << " k=" << k << ": reduction broke the CDS ("
                    << set_size(cds) << " -> " << set_size(reduced) << ")";
            }
        }
    }
}

TEST(CdsReduce, ActuallyReducesClusterCds) {
    // The cluster CDS is redundant by construction; the coverage condition
    // should shave it on average (the Section 1 claim).
    Rng rng(181);
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 8.0;
    double before = 0, after = 0;
    for (int i = 0; i < 15; ++i) {
        const auto net = generate_network_checked(params, rng);
        const auto cds = cluster_cds(net.graph);
        before += static_cast<double>(set_size(cds));
        after += static_cast<double>(
            set_size(reduce_cds(net.graph, cds, 0, PriorityScheme::kDegree)));
    }
    EXPECT_LT(after, before);
}

TEST(CdsReduce, LeafDominatorIsKept) {
    // Regression guard for the domination conditions: in P2 with CDS {0},
    // node 0 has one neighbor (trivially pairwise-covered) but must stay.
    const Graph g = path_graph(2);
    const auto reduced = reduce_cds(g, {1, 0});
    EXPECT_TRUE(reduced[0]);
}

TEST(CdsReduce, DirectEdgeNeighborsStillNeedDomination) {
    // Triangle + two pendants: CDS {0,1}; each of 0,1 covers one pendant.
    // All of 0's neighbor pairs are directly connected or trivial, but
    // dropping 0 would orphan pendant 3 — condition 2 must keep 0... here
    // node 1 > 0, so only 0 could consider dropping (H = {1}).
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    g.add_edge(0, 3);  // pendant of 0
    g.add_edge(1, 4);  // pendant of 1
    std::vector<char> cds{1, 1, 0, 0, 0};
    ASSERT_TRUE(is_cds(g, cds));
    const auto reduced = reduce_cds(g, cds, 0);
    EXPECT_TRUE(is_cds(g, reduced));
    EXPECT_TRUE(reduced[0]);  // 3 has no other dominator
    EXPECT_TRUE(reduced[1]);
}

TEST(CdsReduce, RedundantMemberDropped) {
    // Star: CDS {center, leaf1} — the leaf is redundant.  Degree priority
    // ranks the center above the leaf, letting the leaf defer to it.
    const Graph g = star_graph(5);
    std::vector<char> cds{1, 1, 0, 0, 0};
    const auto reduced = reduce_cds(g, cds, 0, PriorityScheme::kDegree);
    EXPECT_TRUE(reduced[0]);
    EXPECT_FALSE(reduced[1]);
}

TEST(CdsReduce, LocalViewsReduceNoMoreThanGlobal) {
    Rng rng(191);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    const auto cds = cluster_cds(net.graph);
    const auto local = reduce_cds(net.graph, cds, 2);
    const auto global = reduce_cds(net.graph, cds, 0);
    // Membership: dropped under local => dropped under global.
    for (NodeId v = 0; v < 60; ++v) {
        if (cds[v] && !local[v]) EXPECT_FALSE(global[v]) << v;
    }
}

}  // namespace
}  // namespace adhoc
