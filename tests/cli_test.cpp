// Tests for validated numeric CLI parsing (io/cli.hpp): full-token
// consumption, overflow rejection, and the float edge cases.

#include "io/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace adhoc::io {
namespace {

TEST(CliParseU64, AcceptsPlainDecimals) {
    EXPECT_EQ(parse_u64("0"), 0u);
    EXPECT_EQ(parse_u64("42"), 42u);
    EXPECT_EQ(parse_u64("18446744073709551615"),  // UINT64_MAX
              std::numeric_limits<std::uint64_t>::max());
}

TEST(CliParseU64, RejectsGarbage) {
    // The classic strtoull traps: "abc" parses as 0, "12abc" as 12.
    EXPECT_FALSE(parse_u64("abc").has_value());
    EXPECT_FALSE(parse_u64("12abc").has_value());
    EXPECT_FALSE(parse_u64("").has_value());
    EXPECT_FALSE(parse_u64("1 2").has_value());
    EXPECT_FALSE(parse_u64("0x10").has_value());
}

TEST(CliParseU64, RejectsSignsAndWhitespace) {
    // strtoull itself would accept all of these ("-1" wraps to 2^64-1).
    EXPECT_FALSE(parse_u64("-1").has_value());
    EXPECT_FALSE(parse_u64("+5").has_value());
    EXPECT_FALSE(parse_u64(" 5").has_value());
    EXPECT_FALSE(parse_u64("5 ").has_value());
}

TEST(CliParseU64, RejectsOverflow) {
    EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // UINT64_MAX + 1
    EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());
}

TEST(CliParseSize, MatchesU64OnThisPlatform) {
    EXPECT_EQ(parse_size("123"), 123u);
    EXPECT_FALSE(parse_size("x").has_value());
}

TEST(CliParseDouble, AcceptsDecimalScientificAndSigned) {
    EXPECT_EQ(parse_double("0.5"), 0.5);
    EXPECT_EQ(parse_double("3"), 3.0);
    EXPECT_EQ(parse_double("1e3"), 1000.0);
    EXPECT_EQ(parse_double("-1.5"), -1.5);  // range checks live at call sites
}

TEST(CliParseDouble, RejectsGarbageAndNonFinite) {
    EXPECT_FALSE(parse_double("").has_value());
    EXPECT_FALSE(parse_double("1.5s").has_value());
    EXPECT_FALSE(parse_double("nan").has_value());
    EXPECT_FALSE(parse_double("inf").has_value());
    EXPECT_FALSE(parse_double("1e999").has_value());  // overflows to inf
    EXPECT_FALSE(parse_double(" 1").has_value());
}

}  // namespace
}  // namespace adhoc::io
