// Unit tests for lowest-id clustering and the cluster-based CDS.

#include "algorithms/clustering.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Clustering, MisIsIndependentAndDominating) {
    Rng rng(151);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        const auto mis = lowest_id_mis(net.graph);
        EXPECT_TRUE(is_dominating_set(net.graph, mis)) << i;
        for (const Edge& e : net.graph.edges()) {
            EXPECT_FALSE(mis[e.a] && mis[e.b]) << "MIS members adjacent: " << e.a << "," << e.b;
        }
    }
}

TEST(Clustering, MisOnPath) {
    // ids ascending: 0 joins, 1 blocked, 2 joins, 3 blocked, 4 joins.
    const auto mis = lowest_id_mis(path_graph(5));
    EXPECT_TRUE(mis[0]);
    EXPECT_FALSE(mis[1]);
    EXPECT_TRUE(mis[2]);
    EXPECT_FALSE(mis[3]);
    EXPECT_TRUE(mis[4]);
}

TEST(Clustering, HeadsMapToLowestIdHeadNeighbor) {
    const Graph g = star_graph(5);
    const auto head = cluster_heads(g);
    EXPECT_EQ(head[0], 0u);  // center is the lowest id: head of everyone
    for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(head[v], 0u);
}

TEST(Clustering, EveryNodeHasAHead) {
    Rng rng(157);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    const auto head = cluster_heads(net.graph);
    const auto mis = lowest_id_mis(net.graph);
    for (NodeId v = 0; v < 50; ++v) {
        ASSERT_NE(head[v], kInvalidNode);
        EXPECT_TRUE(mis[head[v]]);
        EXPECT_TRUE(head[v] == v || net.graph.has_edge(v, head[v]));
    }
}

TEST(Clustering, ClusterCdsIsCds) {
    Rng rng(163);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        EXPECT_TRUE(is_cds(net.graph, cluster_cds(net.graph))) << i;
    }
}

TEST(Clustering, ClusterCdsOnDeterministicGraphs) {
    for (const Graph& g : {path_graph(7), cycle_graph(9), grid_graph(4, 5), star_graph(6)}) {
        EXPECT_TRUE(is_cds(g, cluster_cds(g))) << g.node_count();
    }
}

TEST(Clustering, BroadcastDelivers) {
    const ClusterCdsAlgorithm algo;
    Rng rng(167);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    Rng run(1);
    const auto result = algo.broadcast(net.graph, 5, run);
    EXPECT_TRUE(result.full_delivery);
}

}  // namespace
}  // namespace adhoc
