/// \file corpus_replay_test.cpp
/// \brief Replays every committed `.repro` file in tests/corpus and checks
/// the recorded digest and oracle expectation — a regression net over
/// minimized scenarios that once mattered.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/oracles.hpp"
#include "fuzz/repro.hpp"

#ifndef ADHOC_CORPUS_DIR
#error "build must define ADHOC_CORPUS_DIR"
#endif

namespace adhoc::fuzz {
namespace {

std::vector<std::string> corpus_files() {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(ADHOC_CORPUS_DIR)) {
        if (entry.path().extension() == ".repro") files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(CorpusReplay, CorpusIsPresent) {
    EXPECT_GE(corpus_files().size(), 10u) << "corpus thinned below the promotion floor";
}

TEST(CorpusReplay, EveryReproReplaysBitIdentically) {
    const AlgorithmPool pool(/*with_mutants=*/true);
    for (const std::string& path : corpus_files()) {
        std::string error;
        const auto repro = load_repro(path, &error);
        ASSERT_TRUE(repro.has_value()) << path << ": " << error;
        ASSERT_TRUE(repro->digest.has_value()) << path << ": corpus files pin digests";

        std::uint64_t digest = 0;
        ASSERT_TRUE(replay_digest(repro->scenario, pool, &digest))
            << path << ": unknown algorithm " << repro->scenario.config.algorithm;
        EXPECT_EQ(digest, *repro->digest)
            << path << ": broadcast outcome changed since the digest was pinned";

        const CheckReport check = check_scenario(repro->scenario, pool);
        const std::string observed = check.ok ? "pass" : check.oracle;
        EXPECT_EQ(observed, repro->oracle) << path << ": " << check.detail;
    }
}

TEST(CorpusReplay, ReplayIsIndependentOfEvaluationOrder) {
    // Digests must not depend on pool state or on which file ran first.
    const std::vector<std::string> files = corpus_files();
    ASSERT_FALSE(files.empty());
    const AlgorithmPool pool(/*with_mutants=*/true);

    std::vector<std::uint64_t> forward;
    for (const std::string& path : files) {
        const auto repro = load_repro(path);
        ASSERT_TRUE(repro.has_value()) << path;
        std::uint64_t digest = 0;
        ASSERT_TRUE(replay_digest(repro->scenario, pool, &digest));
        forward.push_back(digest);
    }
    const AlgorithmPool fresh_pool(/*with_mutants=*/true);
    for (std::size_t i = files.size(); i-- > 0;) {
        const auto repro = load_repro(files[i]);
        ASSERT_TRUE(repro.has_value());
        std::uint64_t digest = 0;
        ASSERT_TRUE(replay_digest(repro->scenario, fresh_pool, &digest));
        EXPECT_EQ(digest, forward[i]) << files[i];
    }
}

}  // namespace
}  // namespace adhoc::fuzz
