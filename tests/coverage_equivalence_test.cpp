// Property test: the optimized compact-view kernels are bit-for-bit
// equivalent to the retained naive `reference::` implementations.
//
// The production hot path (coverage.cpp, maxmin.cpp) compiles each view
// into a dense-id CSR with per-thread scratch and word-parallel bitsets;
// the reference family scans global ids with per-call allocations.  The
// refactor's contract is that the two families agree on *everything
// observable* — verdicts, witness pairs, component labels, reachability
// masks, max-min nodes and full maximal paths — for every graph shape and
// every CoverageOptions combination.  These tests sweep random unit-disk
// placements (the simulation workload), adversarial structured graphs,
// G(n,p) noise, and both owning and KnowledgeBase-cached borrowing views.

#include <gtest/gtest.h>

#include <vector>

#include "core/coverage.hpp"
#include "core/maxmin.hpp"
#include "core/priority.hpp"
#include "core/view.hpp"
#include "graph/unit_disk.hpp"
#include "sim/node_agent.hpp"
#include "stats/rng.hpp"

namespace adhoc {
namespace {

std::vector<CoverageOptions> all_option_combos() {
    std::vector<CoverageOptions> combos;
    for (const bool strong : {false, true}) {
        for (const std::size_t hops : {std::size_t{0}, std::size_t{3}}) {
            for (const std::size_t radius : {std::size_t{0}, std::size_t{2}}) {
                for (const bool merge : {false, true}) {
                    combos.push_back(CoverageOptions{.strong = strong,
                                                    .max_path_hops = hops,
                                                    .merge_visited = merge,
                                                    .coverage_radius = radius});
                }
            }
        }
    }
    return combos;
}

/// Random statuses: ~25% visited, ~15% designated, rest unvisited.
std::vector<NodeStatus> random_statuses(std::size_t n, Rng& rng) {
    std::vector<NodeStatus> status(n, NodeStatus::kUnvisited);
    for (std::size_t v = 0; v < n; ++v) {
        if (rng.chance(0.25)) {
            status[v] = NodeStatus::kVisited;
        } else if (rng.chance(0.15)) {
            status[v] = NodeStatus::kDesignated;
        }
    }
    return status;
}

/// Asserts every kernel agrees between the optimized and reference
/// implementations on `view`, for every node and option combination.
void expect_kernels_agree(const View& view, const std::string& label) {
    const std::size_t n = view.node_count();
    static const std::vector<CoverageOptions> combos = all_option_combos();

    for (NodeId v = 0; v < n; ++v) {
        if (!view.visible(v)) continue;
        for (const CoverageOptions& opts : combos) {
            const CoverageOutcome got = evaluate_coverage(view, v, opts);
            const CoverageOutcome want = reference::evaluate_coverage(view, v, opts);
            ASSERT_EQ(got.covered, want.covered)
                << label << " node " << v << " strong=" << opts.strong
                << " hops=" << opts.max_path_hops << " radius=" << opts.coverage_radius
                << " merge=" << opts.merge_visited;
            ASSERT_EQ(got.uncovered_u, want.uncovered_u) << label << " node " << v;
            ASSERT_EQ(got.uncovered_w, want.uncovered_w) << label << " node " << v;

            // The relaxed designated-node rule exercises the self_status
            // parameter path.
            ASSERT_EQ(
                coverage_condition_holds(view, v, opts, NodeStatus::kDesignated),
                reference::coverage_condition_holds(view, v, opts, NodeStatus::kDesignated))
                << label << " node " << v << " (designated self)";
        }

        const Priority pv = view.priority(v);
        ASSERT_EQ(higher_priority_components(view, pv, true),
                  reference::higher_priority_components(view, pv, true))
            << label << " node " << v;
        ASSERT_EQ(higher_priority_components(view, pv, false),
                  reference::higher_priority_components(view, pv, false))
            << label << " node " << v;
        ASSERT_EQ(connected_via_higher_priority(view, v, pv),
                  reference::connected_via_higher_priority(view, v, pv))
            << label << " node " << v;
    }
}

/// MAX_MIN agreement over every neighbor pair of every node (the Lemma 1
/// machinery shares the compact compilation with the coverage kernels).
void expect_maxmin_agrees(const View& view, const std::string& label) {
    for (NodeId v = 0; v < view.node_count(); ++v) {
        if (!view.visible(v)) continue;
        const Priority pv = view.priority(v);
        const auto nv = view.topology().neighbors(v);
        for (std::size_t i = 0; i < nv.size(); ++i) {
            for (std::size_t j = i + 1; j < nv.size(); ++j) {
                ASSERT_EQ(max_min_node(view, nv[i], nv[j], pv),
                          reference::max_min_node(view, nv[i], nv[j], pv))
                    << label << " v=" << v << " u=" << nv[i] << " w=" << nv[j];
                ASSERT_EQ(max_min_path(view, nv[i], nv[j], pv),
                          reference::max_min_path(view, nv[i], nv[j], pv))
                    << label << " v=" << v << " u=" << nv[i] << " w=" << nv[j];
            }
        }
    }
}

View owning_view(const Graph& g, const std::vector<NodeStatus>& status,
                 const PriorityKeys& keys) {
    const std::size_t n = g.node_count();
    std::vector<NodeId> members(n);
    for (NodeId v = 0; v < n; ++v) members[v] = v;
    return View(Graph(g), std::vector<char>(n, 1), std::vector<NodeStatus>(status), &keys,
                std::move(members));
}

TEST(CoverageEquivalence, RandomUnitDiskGraphs) {
    Rng rng(20260805);
    int cases = 0;
    for (int iter = 0; iter < 140; ++iter) {
        const std::size_t n = 8 + rng.index(21);  // 8..28
        const double degree = std::vector<double>{3.0, 4.0, 6.0, 8.0}[rng.index(4)];
        std::vector<Point2D> pts(n);
        for (Point2D& p : pts) {
            p.x = rng.uniform(0.0, 10.0);
            p.y = rng.uniform(0.0, 10.0);
        }
        const double range =
            std::sqrt(degree * 100.0 / (3.14159265358979323846 * static_cast<double>(n)));
        const Graph g = unit_disk_graph(pts, range);
        for (const PriorityScheme scheme : {PriorityScheme::kId, PriorityScheme::kDegree,
                                            PriorityScheme::kNcr}) {
            const PriorityKeys keys(g, scheme);
            const View view = owning_view(g, random_statuses(n, rng), keys);
            expect_kernels_agree(view, "udg#" + std::to_string(iter));
            ++cases;
        }
    }
    EXPECT_GE(cases, 200);  // the ISSUE floor: >= 200 random graphs/views
}

TEST(CoverageEquivalence, AdversarialStructuredGraphs) {
    Rng rng(77);
    std::vector<std::pair<std::string, Graph>> graphs;
    graphs.emplace_back("path", path_graph(17));
    graphs.emplace_back("cycle", cycle_graph(16));
    graphs.emplace_back("star", star_graph(15));
    graphs.emplace_back("complete", complete_graph(12));
    graphs.emplace_back("grid", grid_graph(4, 5));
    // Barbell: two K6 cliques joined by a 4-node path.
    {
        Graph barbell(16);
        for (NodeId u = 0; u < 6; ++u) {
            for (NodeId v = u + 1; v < 6; ++v) barbell.add_edge(u, v);
        }
        for (NodeId u = 10; u < 16; ++u) {
            for (NodeId v = u + 1; v < 16; ++v) barbell.add_edge(u, v);
        }
        for (NodeId v = 5; v < 11; ++v) barbell.add_edge(v, v + 1);
        graphs.emplace_back("barbell", std::move(barbell));
    }
    // Sparse and dense G(n,p) noise.
    for (const double p : {0.1, 0.35}) {
        Graph gnp(14);
        for (NodeId u = 0; u < 14; ++u) {
            for (NodeId v = u + 1; v < 14; ++v) {
                if (rng.chance(p)) gnp.add_edge(u, v);
            }
        }
        graphs.emplace_back("gnp" + std::to_string(p), std::move(gnp));
    }
    // Edgeless and single-edge degenerate cases.
    graphs.emplace_back("edgeless", Graph(6));
    {
        Graph pair(5);
        pair.add_edge(1, 3);
        graphs.emplace_back("one_edge", std::move(pair));
    }

    for (const auto& [name, g] : graphs) {
        const PriorityKeys keys(g, PriorityScheme::kNcr);
        for (int rep = 0; rep < 4; ++rep) {
            const View view = owning_view(g, random_statuses(g.node_count(), rng), keys);
            expect_kernels_agree(view, name);
            expect_maxmin_agrees(view, name);
        }
    }
}

// The KnowledgeBase path hands kernels a *borrowing* view whose CSR comes
// from the precompiled LocalTopology cache — a different code path through
// LocalViewScratch::compile than owning views take.  Both must agree with
// the reference on identical state.
TEST(CoverageEquivalence, KnowledgeBaseCachedViews) {
    Rng rng(4242);
    for (int iter = 0; iter < 12; ++iter) {
        const std::size_t n = 12 + rng.index(14);  // 12..25
        std::vector<Point2D> pts(n);
        for (Point2D& p : pts) {
            p.x = rng.uniform(0.0, 10.0);
            p.y = rng.uniform(0.0, 10.0);
        }
        const Graph g = unit_disk_graph(
            pts, std::sqrt(6.0 * 100.0 / (3.14159265358979323846 * static_cast<double>(n))));
        const PriorityKeys keys(g, PriorityScheme::kNcr);

        KnowledgeBase kb(g, 2);
        std::vector<char> visited(n, 0);
        std::vector<char> designated(n, 0);
        for (NodeId v = 0; v < n; ++v) {
            if (rng.chance(0.3)) {
                visited[v] = 1;
            } else if (rng.chance(0.2)) {
                designated[v] = 1;
            }
        }
        for (NodeId v = 0; v < n; ++v) {
            kb.load_visited(v, visited);
            kb.load_designated(v, designated);
        }

        for (NodeId v = 0; v < n; ++v) {
            const View cached = kb.view_of(v, keys);
            expect_kernels_agree(cached, "kb#" + std::to_string(iter));

            // Owning replica of the same local view must see the same
            // world: same verdicts from both families.
            const std::size_t nn = g.node_count();
            const LocalTopology& topo = kb.at(v).topology();
            std::vector<NodeStatus> status(nn, NodeStatus::kInvisible);
            for (NodeId x : topo.members) {
                status[x] = visited[x]      ? NodeStatus::kVisited
                            : designated[x] ? NodeStatus::kDesignated
                                            : NodeStatus::kUnvisited;
            }
            const View owning = View(Graph(topo.graph), std::vector<char>(topo.visible),
                                     std::move(status), &keys,
                                     std::vector<NodeId>(topo.members.begin(),
                                                         topo.members.end()));
            for (const CoverageOptions& opts : all_option_combos()) {
                ASSERT_EQ(evaluate_coverage(cached, v, opts).covered,
                          evaluate_coverage(owning, v, opts).covered)
                    << "cached vs owning, iter " << iter << " node " << v;
            }
        }
    }
}

TEST(CoverageEquivalence, MaxMinOnRandomGraphs) {
    Rng rng(90125);
    for (int iter = 0; iter < 20; ++iter) {
        const std::size_t n = 8 + rng.index(11);  // 8..18
        std::vector<Point2D> pts(n);
        for (Point2D& p : pts) {
            p.x = rng.uniform(0.0, 10.0);
            p.y = rng.uniform(0.0, 10.0);
        }
        const Graph g = unit_disk_graph(
            pts, std::sqrt(7.0 * 100.0 / (3.14159265358979323846 * static_cast<double>(n))));
        const PriorityKeys keys(g, iter % 2 == 0 ? PriorityScheme::kDegree
                                                 : PriorityScheme::kNcr);
        const View view = owning_view(g, random_statuses(n, rng), keys);
        expect_maxmin_agrees(view, "maxmin#" + std::to_string(iter));
    }
}

}  // namespace
}  // namespace adhoc
