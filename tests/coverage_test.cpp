// Unit tests for the coverage condition and the strong coverage condition,
// including reconstructions of the paper's Figure 4 and Figure 6 examples.

#include "core/coverage.hpp"

#include <gtest/gtest.h>

#include "core/view.hpp"

namespace adhoc {
namespace {

View dynamic_view(const Graph& g, NodeId center, std::size_t k, const PriorityKeys& keys,
                  std::vector<char> visited = {}, std::vector<char> designated = {}) {
    if (visited.empty()) visited.assign(g.node_count(), 0);
    if (designated.empty()) designated.assign(g.node_count(), 0);
    return make_dynamic_view(g, center, k, keys, visited, designated);
}

TEST(Coverage, LeafNodeIsAlwaysCovered) {
    const Graph g = path_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);
    EXPECT_TRUE(coverage_condition_holds(view, 0));  // single neighbor
}

TEST(Coverage, TriangleLowestIdPrunes) {
    // In a triangle every pair of neighbors is directly connected; all
    // nodes are covered.
    const Graph g = complete_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    for (NodeId v = 0; v < 3; ++v) {
        const View view = make_static_view(g, v, 0, keys);
        EXPECT_TRUE(coverage_condition_holds(view, v));
    }
}

TEST(Coverage, PathMiddleIsNeverCovered) {
    const Graph g = path_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 1, 0, keys);
    const auto outcome = evaluate_coverage(view, 1);
    EXPECT_FALSE(outcome.covered);
    // Witness pair is the two endpoints.
    EXPECT_EQ(outcome.uncovered_u, 0u);
    EXPECT_EQ(outcome.uncovered_w, 2u);
}

TEST(Coverage, CycleOnlyHigherPriorityReplacements) {
    // C4 0-1-2-3: node 1's neighbors 0,2 connect via 3? Path 0-3-2 has
    // intermediate 3 > 1 -> covered.  Node 3's neighbors 0,2 connect via 1
    // only, but Pr(1) < Pr(3) -> not covered.
    const Graph g = cycle_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    EXPECT_TRUE(coverage_condition_holds(make_static_view(g, 1, 0, keys), 1));
    EXPECT_FALSE(coverage_condition_holds(make_static_view(g, 3, 0, keys), 3));
    EXPECT_FALSE(coverage_condition_holds(make_static_view(g, 2, 0, keys), 2));
}

// ---- Figure 6(a): full vs strong, and the 2-hop horizon ---------------
//
// Edges: 4-1, 4-2, 4-3, 1-3, 1-5, 5-6, 6-2, 3-7, 7-8, 8-2 (ids as in the
// paper; node 0 exists but is irrelevant).  Node 4's neighbor pairs are
// covered by two *different* higher-priority components {5,6} and {7,8}
// plus the direct edge (1,3): the full condition holds (3-hop view), the
// strong condition fails, and under 2-hop information links (5,6) and
// (7,8) are invisible so even the full condition fails.
class Figure6a : public ::testing::Test {
  protected:
    Figure6a() : g_(9) {
        g_.add_edge(4, 1);
        g_.add_edge(4, 2);
        g_.add_edge(4, 3);
        g_.add_edge(1, 3);
        g_.add_edge(1, 5);
        g_.add_edge(5, 6);
        g_.add_edge(6, 2);
        g_.add_edge(3, 7);
        g_.add_edge(7, 8);
        g_.add_edge(8, 2);
        keys_ = PriorityKeys(g_, PriorityScheme::kId);
    }
    Graph g_;
    PriorityKeys keys_;
};

TEST_F(Figure6a, FullCoverageHoldsWith3HopInfo) {
    const View view = make_static_view(g_, 4, 3, keys_);
    EXPECT_TRUE(coverage_condition_holds(view, 4, CoverageOptions{}));
}

TEST_F(Figure6a, StrongCoverageFailsEvenGlobally) {
    const View view = make_static_view(g_, 4, 0, keys_);
    EXPECT_FALSE(coverage_condition_holds(view, 4, CoverageOptions{.strong = true}));
}

TEST_F(Figure6a, FullCoverageFailsWith2HopInfo) {
    // Link (7,8) (and (5,6)) joins two exactly-2-hop nodes: invisible.
    const View view = make_static_view(g_, 4, 2, keys_);
    EXPECT_FALSE(coverage_condition_holds(view, 4, CoverageOptions{}));
}

// ---- Figure 6(b): merged visited nodes enable the strong condition ----
//
// Node 2's neighbors: black nodes 0 and 1 (visited), white nodes 3 and 4.
// Edges: 2-0, 2-1, 2-3, 2-4, 3-0, 3-4.  The two black nodes are not
// adjacent, but all visited nodes are assumed connected (through the
// source), so {0,1,3,4} forms one coverage component and node 2 prunes.
class Figure6b : public ::testing::Test {
  protected:
    Figure6b() : g_(5) {
        g_.add_edge(2, 0);
        g_.add_edge(2, 1);
        g_.add_edge(2, 3);
        g_.add_edge(2, 4);
        g_.add_edge(3, 0);
        g_.add_edge(3, 4);
        keys_ = PriorityKeys(g_, PriorityScheme::kId);
        visited_.assign(5, 0);
        visited_[0] = visited_[1] = 1;
    }
    Graph g_;
    PriorityKeys keys_;
    std::vector<char> visited_;
};

TEST_F(Figure6b, StrongCoverageHoldsWithVisitedMerge) {
    const View view = make_dynamic_view(g_, 2, 0, keys_, visited_, std::vector<char>(5, 0));
    EXPECT_TRUE(coverage_condition_holds(view, 2, CoverageOptions{.strong = true}));
}

TEST_F(Figure6b, StrongCoverageFailsWithoutMerge) {
    const View view = make_dynamic_view(g_, 2, 0, keys_, visited_, std::vector<char>(5, 0));
    const CoverageOptions opts{.strong = true, .merge_visited = false};
    EXPECT_FALSE(coverage_condition_holds(view, 2, opts));
}

TEST_F(Figure6b, FullCoverageAlsoHolds) {
    const View view = make_dynamic_view(g_, 2, 0, keys_, visited_, std::vector<char>(5, 0));
    EXPECT_TRUE(coverage_condition_holds(view, 2, CoverageOptions{}));
}

// ---- Figure 4 logic: dynamic views prune where static ones cannot -----

TEST(Coverage, VisitedNodeEnablesPruning) {
    // v=3 with neighbors 1 and 5; they connect only through node 2.
    Graph g(6);
    g.add_edge(3, 1);
    g.add_edge(3, 5);
    g.add_edge(1, 2);
    g.add_edge(2, 5);
    const PriorityKeys keys(g, PriorityScheme::kId);

    // Static: Pr(2) = (1,2) < Pr(3) = (1,3): no replacement path.
    const View stat = make_static_view(g, 3, 0, keys);
    EXPECT_FALSE(coverage_condition_holds(stat, 3));

    // Dynamic: node 2 visited -> Pr(2) = (2,2) > Pr(3): path 1-2-5 works.
    std::vector<char> visited(6, 0);
    visited[2] = 1;
    const View dyn = make_dynamic_view(g, 3, 0, keys, visited, std::vector<char>(6, 0));
    EXPECT_TRUE(coverage_condition_holds(dyn, 3));
}

// ---- Structural properties --------------------------------------------

TEST(Coverage, StrongImpliesFull) {
    // Property spot-check on a deterministic medium-size graph.
    const Graph g = grid_graph(4, 5);
    const PriorityKeys keys(g, PriorityScheme::kDegree);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const View view = make_static_view(g, v, 3, keys);
        if (coverage_condition_holds(view, v, CoverageOptions{.strong = true})) {
            EXPECT_TRUE(coverage_condition_holds(view, v, CoverageOptions{}))
                << "strong held but full failed at " << v;
        }
    }
}

TEST(Coverage, BoundedPathsAreWeakerThanUnbounded) {
    // C6: node 0's neighbors 1 and 5 connect via 2-3-4 (3 intermediates).
    // Unbounded full coverage: covered (ids 2..5 > 0... wait, intermediates
    // 2,3,4 all > 0).  With Span's 3-hop cap the path is too long.
    const Graph g = cycle_graph(6);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);
    EXPECT_TRUE(coverage_condition_holds(view, 0, CoverageOptions{}));
    EXPECT_FALSE(coverage_condition_holds(view, 0, CoverageOptions{.max_path_hops = 3}));
    // A 4-hop budget admits the path 1-2-3-4-5.
    EXPECT_TRUE(coverage_condition_holds(view, 0, CoverageOptions{.max_path_hops = 4}));
}

TEST(Coverage, BoundedPathDirectEdgeStillCounts) {
    const Graph g = complete_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);
    EXPECT_TRUE(coverage_condition_holds(view, 0, CoverageOptions{.max_path_hops = 3}));
}

TEST(Coverage, DesignatedSelfStatusRaisesBar) {
    // v=1 designated; its neighbors connect via node 2 which is unvisited
    // with higher id.  As plain unvisited, Pr(2)=(1,2) > Pr(1)=(1,1):
    // covered.  As designated, Pr(1)=(1.5,1) > Pr(2): not covered.
    Graph g(4);
    g.add_edge(1, 0);
    g.add_edge(1, 3);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 1, 0, keys);
    EXPECT_TRUE(coverage_condition_holds(view, 1, {}, NodeStatus::kUnvisited));
    EXPECT_FALSE(coverage_condition_holds(view, 1, {}, NodeStatus::kDesignated));
}

TEST(Coverage, DesignatedNeighborsCountAsHigherPriority) {
    // Same topology; node 2 known-designated: Pr(2)=(1.5,2) > (1.5,1).
    Graph g(4);
    g.add_edge(1, 0);
    g.add_edge(1, 3);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    std::vector<char> designated(4, 0);
    designated[2] = 1;
    const View view = make_dynamic_view(g, 1, 0, keys, std::vector<char>(4, 0), designated);
    EXPECT_TRUE(coverage_condition_holds(view, 1, {}, NodeStatus::kDesignated));
}

TEST(Coverage, HigherPriorityComponentsMergeVisited) {
    // Two visited nodes in separate components of the induced subgraph
    // share a label after merging.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    std::vector<char> visited{1, 0, 1, 0, 0};
    const View view = make_dynamic_view(g, 4, 0, keys, visited, std::vector<char>(5, 0));
    const Priority bottom = keys.evaluate(4, NodeStatus::kInvisible);
    const auto merged = higher_priority_components(view, bottom, /*merge_visited=*/true);
    EXPECT_EQ(merged[0], merged[2]);
    const auto split = higher_priority_components(view, bottom, /*merge_visited=*/false);
    EXPECT_NE(split[0], split[2]);
}

TEST(Coverage, ConnectedViaHigherPriorityExpandsOnlyThroughHighNodes) {
    // Chain 0-1-2-3 viewed by v=2 (threshold Pr(2)): from 0, node 1 can be
    // *reached* but not traversed (Pr(1) < Pr(2)), so 3 is not in C.
    const Graph g = path_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 2, 0, keys);
    const Priority threshold = keys.evaluate(2, NodeStatus::kUnvisited);
    const auto in_c = connected_via_higher_priority(view, 0, threshold);
    EXPECT_TRUE(in_c[0]);
    EXPECT_TRUE(in_c[1]);   // endpoint reach
    EXPECT_FALSE(in_c[2]);  // cannot pass through node 1
    EXPECT_FALSE(in_c[3]);
}

TEST(Coverage, ConnectedViaHigherPriorityTraversesHighNodes) {
    const Graph g = path_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);  // threshold Pr(0)
    const Priority threshold = keys.evaluate(0, NodeStatus::kUnvisited);
    const auto in_c = connected_via_higher_priority(view, 1, threshold);
    EXPECT_TRUE(in_c[2]);
    EXPECT_TRUE(in_c[3]);  // all intermediates have higher ids than 0
}

TEST(Coverage, EvaluateReportsWitnessPair) {
    const Graph g = star_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);
    const auto outcome = evaluate_coverage(view, 0);
    EXPECT_FALSE(outcome.covered);
    EXPECT_NE(outcome.uncovered_u, kInvalidNode);
    EXPECT_NE(outcome.uncovered_w, kInvalidNode);
    EXPECT_TRUE(g.has_edge(0, outcome.uncovered_u));
    EXPECT_TRUE(g.has_edge(0, outcome.uncovered_w));
}

TEST(Coverage, CoverageRadiusRestrictsIntermediates) {
    // C4 from node 1: the replacement path for (0,2) runs through node 3
    // at distance 2.  With radius 1 (restricted Rule-k style) node 3 is
    // not an admissible coverage node.
    const Graph g = cycle_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 1, 0, keys);
    EXPECT_TRUE(coverage_condition_holds(view, 1, CoverageOptions{}));
    EXPECT_FALSE(coverage_condition_holds(view, 1, CoverageOptions{.coverage_radius = 1}));
    EXPECT_TRUE(coverage_condition_holds(view, 1, CoverageOptions{.coverage_radius = 2}));
}

TEST(Coverage, CoverageRadiusAppliesToStrongCondition) {
    // Star-of-stars: node 0's neighbors {1,2} are dominated by node 3
    // (adjacent to both) which sits at distance... make 3 adjacent to 1
    // and 2 but not 0: radius 1 excludes it, radius 2 admits it.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(3, 1);
    g.add_edge(3, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);
    const CoverageOptions r1{.strong = true, .coverage_radius = 1};
    const CoverageOptions r2{.strong = true, .coverage_radius = 2};
    EXPECT_FALSE(coverage_condition_holds(view, 0, r1));
    EXPECT_TRUE(coverage_condition_holds(view, 0, r2));
}

TEST(Coverage, DynamicViewHelperUnused) {
    // Silence helper-unused warnings in configurations where only some
    // fixtures run; also sanity-checks the helper itself.
    const Graph g = complete_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View v = dynamic_view(g, 0, 0, keys);
    EXPECT_TRUE(coverage_condition_holds(v, 0));
}

}  // namespace
}  // namespace adhoc
