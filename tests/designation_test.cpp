// Unit tests for greedy set-cover designation and hybrid single selection.

#include "core/designation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace adhoc {
namespace {

TEST(Designation, EffectiveDegreeCountsUncoveredNeighbors) {
    const Graph g = star_graph(5);
    std::vector<char> uncovered(5, 1);
    EXPECT_EQ(effective_degree(g, 0, uncovered), 4u);
    uncovered[1] = uncovered[2] = 0;
    EXPECT_EQ(effective_degree(g, 0, uncovered), 2u);
    EXPECT_EQ(effective_degree(g, 1, uncovered), 1u);  // leaf still covers the center
}

TEST(Designation, EffectiveDegreeLeaf) {
    const Graph g = star_graph(3);
    std::vector<char> uncovered(3, 1);
    EXPECT_EQ(effective_degree(g, 1, uncovered), 1u);  // leaf covers the center
}

TEST(Designation, GreedyCoverPicksDominatingCandidate) {
    // Candidates 1 and 2; 1 covers targets {3,4}, 2 covers {4}.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(1, 4);
    g.add_edge(2, 4);
    const std::vector<NodeId> candidates{1, 2};
    const std::vector<NodeId> targets{3, 4};
    const auto cover = greedy_cover(g, candidates, targets);
    EXPECT_EQ(cover, std::vector<NodeId>{1});
}

TEST(Designation, GreedyCoverNeedsMultipleCandidates) {
    // 1 covers {3}, 2 covers {4}: both required.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    const std::vector<NodeId> candidates{1, 2};
    const std::vector<NodeId> targets{3, 4};
    auto cover = greedy_cover(g, candidates, targets);
    std::sort(cover.begin(), cover.end());
    EXPECT_EQ(cover, (std::vector<NodeId>{1, 2}));
}

TEST(Designation, GreedyCoverEmptyTargets) {
    const Graph g = star_graph(4);
    const std::vector<NodeId> candidates{1, 2};
    EXPECT_TRUE(greedy_cover(g, candidates, {}).empty());
}

TEST(Designation, GreedyCoverStopsWhenNothingCoverable) {
    // Target 3 is adjacent to no candidate.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    const std::vector<NodeId> candidates{1, 2};
    const std::vector<NodeId> targets{3};
    EXPECT_TRUE(greedy_cover(g, candidates, targets).empty());
}

TEST(Designation, GreedyCoverTieBreaksBySmallerId) {
    // Candidates 2 and 3 each cover exactly one distinct target; first
    // pick must be the smaller id.
    Graph g(6);
    g.add_edge(2, 4);
    g.add_edge(3, 5);
    const std::vector<NodeId> candidates{3, 2};
    const std::vector<NodeId> targets{4, 5};
    const auto cover = greedy_cover(g, candidates, targets);
    ASSERT_EQ(cover.size(), 2u);
    EXPECT_EQ(cover[0], 2u);
    EXPECT_EQ(cover[1], 3u);
}

TEST(Designation, GreedyCoverRecomputesEffectiveDegrees) {
    // Classic greedy behavior: after picking 1 (covers 3,4,5), node 2's
    // gain drops from 2 to 1 (only 6 remains).
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(1, 4);
    g.add_edge(1, 5);
    g.add_edge(2, 5);
    g.add_edge(2, 6);
    const std::vector<NodeId> candidates{1, 2};
    const std::vector<NodeId> targets{3, 4, 5, 6};
    const auto cover = greedy_cover(g, candidates, targets);
    EXPECT_EQ(cover, (std::vector<NodeId>{1, 2}));
}

TEST(Designation, SingleMaxDegreePicksLargestGain) {
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    g.add_edge(2, 5);
    std::vector<char> uncovered(6, 0);
    uncovered[3] = uncovered[4] = uncovered[5] = 1;
    const std::vector<NodeId> candidates{1, 2};
    EXPECT_EQ(designate_single(g, candidates, uncovered, HybridPolicy::kMaxDegree), 2u);
}

TEST(Designation, SingleMinIdPicksLowestEligible) {
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    g.add_edge(2, 5);
    std::vector<char> uncovered(6, 0);
    uncovered[3] = uncovered[4] = uncovered[5] = 1;
    const std::vector<NodeId> candidates{2, 1};
    EXPECT_EQ(designate_single(g, candidates, uncovered, HybridPolicy::kMinId), 1u);
}

TEST(Designation, SingleRequiresPositiveCoverage) {
    // Paper 6.4: the designated neighbor must cover at least one 2-hop
    // neighbor; otherwise none is designated.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    std::vector<char> uncovered(4, 0);
    uncovered[3] = 1;  // nobody covers 3
    const std::vector<NodeId> candidates{1, 2};
    EXPECT_EQ(designate_single(g, candidates, uncovered, HybridPolicy::kMaxDegree),
              kInvalidNode);
    EXPECT_EQ(designate_single(g, candidates, uncovered, HybridPolicy::kMinId), kInvalidNode);
}

TEST(Designation, SingleMaxDegreeTieBreaksById) {
    Graph g(6);
    g.add_edge(0, 2);
    g.add_edge(0, 1);
    g.add_edge(1, 4);
    g.add_edge(2, 5);
    std::vector<char> uncovered(6, 0);
    uncovered[4] = uncovered[5] = 1;
    const std::vector<NodeId> candidates{2, 1};
    EXPECT_EQ(designate_single(g, candidates, uncovered, HybridPolicy::kMaxDegree), 1u);
}

}  // namespace
}  // namespace adhoc
