// Determinism and scale smoke tests across the whole registry.
//
// Reproducibility is a design guarantee of the simulator (same seed +
// topology + algorithm => identical run), and the library must remain
// practical at several times the paper's n=100 evaluation scale.

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Determinism, EveryAlgorithmIsSeedReproducible) {
    Rng gen(443);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, gen);

    const auto registry = make_registry();
    for (const auto& e : registry) {
        Rng a(17), b(17);
        const auto r1 = e.algorithm->broadcast(net.graph, 3, a);
        const auto r2 = e.algorithm->broadcast(net.graph, 3, b);
        EXPECT_EQ(r1.transmitted, r2.transmitted) << e.key;
        EXPECT_EQ(r1.received, r2.received) << e.key;
        EXPECT_DOUBLE_EQ(r1.completion_time, r2.completion_time) << e.key;
    }
}

TEST(Determinism, TracedAndUntracedRunsAgree) {
    Rng gen(449);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    const auto registry = make_registry();
    for (const auto& e : registry) {
        Rng a(23), b(23);
        const auto plain = e.algorithm->broadcast(net.graph, 0, a);
        const auto traced = e.algorithm->broadcast_traced(net.graph, 0, b, {});
        EXPECT_EQ(plain.transmitted, traced.transmitted) << e.key;
    }
}

TEST(Scale, ThreeHundredNodesStayFastAndCorrect) {
    Rng gen(457);
    UnitDiskParams params;
    params.node_count = 300;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, gen);

    const auto registry = make_registry();
    for (const auto& e : registry) {
        if (e.key.rfind("gossip", 0) == 0) continue;
        Rng run(29);
        const auto result = e.algorithm->broadcast(net.graph, 0, run);
        EXPECT_TRUE(result.full_delivery) << e.key;
        EXPECT_TRUE(check_broadcast(net.graph, 0, result).cds.ok()) << e.key;
        if (e.key != "flooding") {  // flooding forwards everywhere by design
            EXPECT_LT(result.forward_count, net.graph.node_count()) << e.key;
        }
    }
}

TEST(Scale, DenseFiveHundredSmoke) {
    // One pass of the cheapest dynamic algorithm at n=500 to guard against
    // accidental quadratic-in-practice blowups in the hot path.
    Rng gen(461);
    UnitDiskParams params;
    params.node_count = 500;
    params.average_degree = 10.0;
    const auto net = generate_network_checked(params, gen);
    const auto registry = make_registry();
    const BroadcastAlgorithm* fr = find_algorithm(registry, "generic-fr");
    ASSERT_NE(fr, nullptr);
    Rng run(31);
    const auto result = fr->broadcast(net.graph, 0, run);
    EXPECT_TRUE(result.full_delivery);
}

}  // namespace
}  // namespace adhoc
