// Unit tests for the directed-graph substrate and the bidirectional
// abstraction (paper assumption 3).

#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "graph/traversal.hpp"

namespace adhoc {
namespace {

TEST(Digraph, ArcsAreDirected) {
    Digraph dg(3);
    EXPECT_TRUE(dg.add_arc(0, 1));
    EXPECT_TRUE(dg.has_arc(0, 1));
    EXPECT_FALSE(dg.has_arc(1, 0));
    EXPECT_EQ(dg.arc_count(), 1u);
}

TEST(Digraph, DuplicateAndSelfArcsRejected) {
    Digraph dg(2);
    EXPECT_TRUE(dg.add_arc(0, 1));
    EXPECT_FALSE(dg.add_arc(0, 1));
    EXPECT_FALSE(dg.add_arc(1, 1));
    EXPECT_EQ(dg.arc_count(), 1u);
}

TEST(Digraph, InAndOutNeighborsConsistent) {
    Digraph dg(4);
    dg.add_arc(0, 2);
    dg.add_arc(1, 2);
    dg.add_arc(2, 3);
    EXPECT_EQ(dg.in_neighbors(2).size(), 2u);
    EXPECT_EQ(dg.out_neighbors(2).size(), 1u);
    EXPECT_EQ(dg.out_neighbors(2)[0], 3u);
}

TEST(Digraph, SymmetricCoreKeepsOnlyBidirectionalLinks) {
    Digraph dg(3);
    dg.add_arc(0, 1);
    dg.add_arc(1, 0);  // symmetric
    dg.add_arc(1, 2);  // unidirectional
    const Graph core = symmetric_core(dg);
    EXPECT_TRUE(core.has_edge(0, 1));
    EXPECT_FALSE(core.has_edge(1, 2));
    EXPECT_EQ(core.edge_count(), 1u);
    EXPECT_EQ(unidirectional_arc_count(dg), 1u);
}

TEST(Digraph, DirectedReachFollowsArcsOnly) {
    Digraph dg(4);
    dg.add_arc(0, 1);
    dg.add_arc(1, 2);
    dg.add_arc(3, 2);  // 3 unreachable from 0
    const auto reach = directed_reach(dg, 0);
    EXPECT_TRUE(reach[0]);
    EXPECT_TRUE(reach[1]);
    EXPECT_TRUE(reach[2]);
    EXPECT_FALSE(reach[3]);
}

TEST(Heterogeneous, ZeroSpreadYieldsNoUnidirectionalLinks) {
    Rng rng(241);
    HeterogeneousParams params;
    params.node_count = 40;
    params.range_spread = 0.0;
    const auto net = generate_heterogeneous_network(params, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(unidirectional_arc_count(net->digraph), 0u);
    EXPECT_EQ(net->core.edge_count() * 2, net->digraph.arc_count());
}

TEST(Heterogeneous, SpreadCreatesUnidirectionalLinks) {
    Rng rng(251);
    HeterogeneousParams params;
    params.node_count = 50;
    params.range_spread = 0.4;
    const auto net = generate_heterogeneous_network(params, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_GT(unidirectional_arc_count(net->digraph), 0u);
    EXPECT_TRUE(is_connected(net->core));
}

TEST(Heterogeneous, MoreSpreadMoreAsymmetryOnAverage) {
    auto asymmetric_fraction = [](double spread) {
        Rng rng(257);
        HeterogeneousParams params;
        params.node_count = 50;
        params.range_spread = spread;
        double uni = 0, total = 0;
        for (int i = 0; i < 10; ++i) {
            const auto net = generate_heterogeneous_network(params, rng);
            if (!net) continue;
            uni += static_cast<double>(unidirectional_arc_count(net->digraph));
            total += static_cast<double>(net->digraph.arc_count());
        }
        return total > 0 ? uni / total : 0.0;
    };
    EXPECT_LT(asymmetric_fraction(0.1), asymmetric_fraction(0.5));
}

TEST(Heterogeneous, ArcMatchesPerNodeRange) {
    Rng rng(263);
    HeterogeneousParams params;
    params.node_count = 30;
    const auto net = generate_heterogeneous_network(params, rng);
    ASSERT_TRUE(net.has_value());
    for (NodeId u = 0; u < 30; ++u) {
        for (NodeId v = 0; v < 30; ++v) {
            if (u == v) continue;
            const double d = distance(net->positions[u], net->positions[v]);
            EXPECT_EQ(net->digraph.has_arc(u, v), d <= net->ranges[u]) << u << "->" << v;
        }
    }
}

TEST(Heterogeneous, BroadcastOverCoreCoversEveryone) {
    // The point of the sublayer: every algorithm runs unchanged on the
    // symmetric core and retains its guarantees.
    Rng rng(269);
    HeterogeneousParams params;
    params.node_count = 50;
    params.range_spread = 0.3;
    const auto net = generate_heterogeneous_network(params, rng);
    ASSERT_TRUE(net.has_value());
    const GenericBroadcast algo(generic_fr_config(2));
    Rng run(1);
    const auto result = algo.broadcast(net->core, 0, run);
    EXPECT_TRUE(result.full_delivery);
}

TEST(Heterogeneous, DirectedReachAtLeastCore) {
    Rng rng(271);
    HeterogeneousParams params;
    params.node_count = 40;
    params.range_spread = 0.4;
    const auto net = generate_heterogeneous_network(params, rng);
    ASSERT_TRUE(net.has_value());
    const auto reach = directed_reach(net->digraph, 0);
    // The core is connected, so raw directed flooding reaches everyone the
    // core reaches (every core edge is two arcs).
    for (NodeId v = 0; v < 40; ++v) EXPECT_TRUE(reach[v]) << v;
}

}  // namespace
}  // namespace adhoc
