// Unit tests for DP, TDP and PDP.

#include "algorithms/dominant_pruning.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(DominantPruning, Names) {
    EXPECT_EQ(DominantPruningAlgorithm(DominantPruningVariant::kDp).name(), "DP");
    EXPECT_EQ(DominantPruningAlgorithm(DominantPruningVariant::kTdp).name(), "TDP");
    EXPECT_EQ(DominantPruningAlgorithm(DominantPruningVariant::kPdp).name(), "PDP");
    EXPECT_EQ(DominantPruningAlgorithm(DominantPruningVariant::kAhbp).name(), "AHBP");
}

TEST(DominantPruning, StarOnlySourceAndMaybeCenter) {
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const Graph g = star_graph(6);
    Rng rng(1);
    // From the center: no 2-hop targets, no designation.
    auto result = dp.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);
    // From a leaf: designate the center.
    result = dp.broadcast(g, 2, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 2u);
    EXPECT_TRUE(result.transmitted[0]);
}

TEST(DominantPruning, PathChainsDesignations) {
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const Graph g = path_graph(5);
    Rng rng(1);
    const auto result = dp.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 4u);  // 0,1,2,3; leaf 4 silent
    EXPECT_FALSE(result.transmitted[4]);
}

TEST(DominantPruning, AllVariantsDeliverOnRandomNetworks) {
    Rng rng(61);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        for (auto variant : {DominantPruningVariant::kDp, DominantPruningVariant::kTdp,
                             DominantPruningVariant::kPdp, DominantPruningVariant::kAhbp}) {
            const DominantPruningAlgorithm algo(variant);
            Rng run(i);
            const NodeId src = static_cast<NodeId>(run.index(60));
            const auto result = algo.broadcast(net.graph, src, run);
            EXPECT_TRUE(result.full_delivery)
                << to_string(variant) << " iteration " << i;
            EXPECT_TRUE(check_broadcast(net.graph, src, result).ok())
                << to_string(variant) << " iteration " << i;
        }
    }
}

TEST(DominantPruning, TdpAndPdpNeverWorseThanDpOnAverage) {
    // Lou & Wu's claim (Section 6.3): TDP/PDP reduce the 2-hop coverage
    // obligation, so they designate no more nodes than DP on average.
    Rng rng(67);
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 8.0;
    double dp_total = 0, tdp_total = 0, pdp_total = 0;
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const DominantPruningAlgorithm tdp(DominantPruningVariant::kTdp);
    const DominantPruningAlgorithm pdp(DominantPruningVariant::kPdp);
    for (int i = 0; i < 20; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng run(i);
        const NodeId src = static_cast<NodeId>(run.index(80));
        dp_total += static_cast<double>(dp.broadcast(net.graph, src, run).forward_count);
        tdp_total += static_cast<double>(tdp.broadcast(net.graph, src, run).forward_count);
        pdp_total += static_cast<double>(pdp.broadcast(net.graph, src, run).forward_count);
    }
    EXPECT_LE(tdp_total, dp_total);
    EXPECT_LE(pdp_total, dp_total);
}

TEST(DominantPruning, AhbpNeverWorseThanDpOnAverage) {
    // AHBP's gateway-coverage elimination can only shrink each node's
    // obligation relative to DP.
    Rng rng(193);
    UnitDiskParams params;
    params.node_count = 70;
    params.average_degree = 8.0;
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const DominantPruningAlgorithm ahbp(DominantPruningVariant::kAhbp);
    double dp_total = 0, ahbp_total = 0;
    for (int i = 0; i < 20; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        dp_total += static_cast<double>(dp.broadcast(net.graph, 0, a).forward_count);
        ahbp_total += static_cast<double>(ahbp.broadcast(net.graph, 0, b).forward_count);
    }
    EXPECT_LE(ahbp_total, dp_total);
}

TEST(DominantPruning, AhbpEliminatesSiblingCoverage) {
    // Source 0 designates {1, 2} to cover {3, 4}; node 1 must not
    // re-designate anyone for 4 (sibling 2 covers it).
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    g.add_edge(3, 5);
    const DominantPruningAlgorithm ahbp(DominantPruningVariant::kAhbp);
    Rng rng(1);
    const auto result = ahbp.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    // 2's own 2-hop targets after elimination are just {3}? 3 is covered
    // by sibling 1 -> 2 designates nobody and 4 is a leaf.
    EXPECT_FALSE(result.transmitted[4]);
}

TEST(DominantPruning, TdpPiggybacksTwoHopSet) {
    const DominantPruningAlgorithm tdp(DominantPruningVariant::kTdp);
    const Graph g = path_graph(4);
    Rng rng(1);
    const auto result = tdp.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
}

TEST(DominantPruning, LateDesignationStillForwards) {
    // A node that first receives an undesignated copy can still be
    // designated by a later sender and must then forward.
    // Construction: diamond 0-1, 0-2, 1-3, 2-3, 3-4.  Source 0 designates
    // greedily to cover {3}; whichever of 1/2 is chosen, node 3 is later
    // designated to cover 4.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    Rng rng(1);
    const auto result = dp.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_TRUE(result.transmitted[3]);
}

TEST(DominantPruning, DeterministicUnderSeed) {
    Rng gen(71);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    const DominantPruningAlgorithm dp(DominantPruningVariant::kPdp);
    Rng a(4), b(4);
    EXPECT_EQ(dp.broadcast(net.graph, 0, a).transmitted,
              dp.broadcast(net.graph, 0, b).transmitted);
}

}  // namespace
}  // namespace adhoc
