// Edge-case sweep: every registered algorithm on degenerate and tiny
// topologies — single node, single edge, leaf sources, bridges, dense
// cliques with pendants.  These configurations historically break
// neighbor-designating and backoff logic.

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

class EdgeCases : public ::testing::Test {
  protected:
    static void run_all(const Graph& g, NodeId source, const char* label) {
        const auto registry = make_registry();
        for (const auto& e : registry) {
            if (e.key.rfind("gossip", 0) == 0) continue;  // no guarantee
            Rng rng(3);
            const auto result = e.algorithm->broadcast(g, source, rng);
            EXPECT_TRUE(result.full_delivery)
                << e.key << " failed on " << label << " from " << source;
            EXPECT_TRUE(result.transmitted[source]) << e.key << " on " << label;
        }
    }
};

TEST_F(EdgeCases, SingleNode) {
    run_all(Graph(1), 0, "K1");
}

TEST_F(EdgeCases, SingleEdge) {
    run_all(path_graph(2), 0, "P2");
    run_all(path_graph(2), 1, "P2-reversed");
}

TEST_F(EdgeCases, Triangle) {
    run_all(complete_graph(3), 0, "K3");
}

TEST_F(EdgeCases, PathFromLeafAndMiddle) {
    run_all(path_graph(7), 0, "P7-leaf");
    run_all(path_graph(7), 3, "P7-middle");
}

TEST_F(EdgeCases, StarFromCenterAndLeaf) {
    run_all(star_graph(8), 0, "S8-center");
    run_all(star_graph(8), 5, "S8-leaf");
}

TEST_F(EdgeCases, CycleEven) { run_all(cycle_graph(8), 0, "C8"); }

TEST_F(EdgeCases, CycleOdd) { run_all(cycle_graph(9), 4, "C9"); }

TEST_F(EdgeCases, CliqueWithPendant) {
    // Pruning-friendly clique with one hard-to-reach pendant.
    Graph g = complete_graph(6);
    Graph h(7);
    for (const Edge& e : g.edges()) h.add_edge(e.a, e.b);
    h.add_edge(5, 6);
    run_all(h, 0, "K6+pendant");
    run_all(h, 6, "K6+pendant-from-pendant");
}

TEST_F(EdgeCases, TwoCliquesBridge) {
    // Two K4s joined by a single bridge edge — the bridge endpoints are
    // articulation points every scheme must keep.
    Graph g(8);
    for (NodeId u = 0; u < 4; ++u) {
        for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
    }
    for (NodeId u = 4; u < 8; ++u) {
        for (NodeId v = u + 1; v < 8; ++v) g.add_edge(u, v);
    }
    g.add_edge(3, 4);
    run_all(g, 0, "2xK4-bridge");
    run_all(g, 7, "2xK4-bridge-far");
}

TEST_F(EdgeCases, LongChainOfTriangles) {
    // Triangle chain: 0-1-2, 2-3-4, 4-5-6, ...
    Graph g(9);
    for (NodeId base = 0; base + 2 < 9; base += 2) {
        g.add_edge(base, base + 1);
        g.add_edge(base + 1, base + 2);
        g.add_edge(base, base + 2);
    }
    run_all(g, 0, "triangle-chain");
    run_all(g, 4, "triangle-chain-middle");
}

TEST_F(EdgeCases, DeepGrid) {
    run_all(grid_graph(2, 10), 0, "2x10-grid");
}

TEST_F(EdgeCases, DisconnectedGraphsCoverTheSourceComponent) {
    // Two separate triangles; source in the first.  No algorithm can reach
    // the other component, but every deterministic one must cover the
    // source's own component and terminate cleanly.
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(3, 5);
    const auto registry = make_registry();
    for (const auto& e : registry) {
        if (e.key.rfind("gossip", 0) == 0) continue;
        // The centralized CDS constructions require connected inputs by
        // contract; skip them here.
        if (e.key == "guha-khuller" || e.key == "cluster-cds") continue;
        Rng rng(3);
        const auto result = e.algorithm->broadcast(g, 0, rng);
        EXPECT_FALSE(result.full_delivery) << e.key;
        EXPECT_TRUE(covers_source_component(g, 0, result.received)) << e.key;
        for (NodeId v = 3; v < 6; ++v) {
            EXPECT_FALSE(result.received[v]) << e.key << " reached " << v;
        }
    }
}

}  // namespace
}  // namespace adhoc
