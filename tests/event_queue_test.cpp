// Unit tests for the deterministic event queue.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    q.push(3.0, EventKind::kTimer, 0, 0);
    q.push(1.0, EventKind::kTimer, 1, 0);
    q.push(2.0, EventKind::kTimer, 2, 0);
    EXPECT_EQ(q.pop().node, 1u);
    EXPECT_EQ(q.pop().node, 2u);
    EXPECT_EQ(q.pop().node, 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesResolveFifo) {
    EventQueue q;
    for (NodeId v = 0; v < 10; ++v) q.push(5.0, EventKind::kDelivery, v, v);
    for (NodeId v = 0; v < 10; ++v) {
        const Event e = q.pop();
        EXPECT_EQ(e.node, v);
        EXPECT_EQ(e.payload, v);
    }
}

TEST(EventQueue, MixedTimesAndTies) {
    EventQueue q;
    q.push(2.0, EventKind::kTimer, 0, 0);
    q.push(1.0, EventKind::kTimer, 1, 0);
    q.push(2.0, EventKind::kTimer, 2, 0);
    q.push(1.0, EventKind::kTimer, 3, 0);
    EXPECT_EQ(q.pop().node, 1u);
    EXPECT_EQ(q.pop().node, 3u);
    EXPECT_EQ(q.pop().node, 0u);
    EXPECT_EQ(q.pop().node, 2u);
}

TEST(EventQueue, SizeAndClear) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.push(1.0, EventKind::kTimer, 0, 0);
    q.push(2.0, EventKind::kTimer, 0, 0);
    EXPECT_EQ(q.size(), 2u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PayloadAndKindPreserved) {
    EventQueue q;
    q.push(1.5, EventKind::kDelivery, 7, 42);
    const Event e = q.pop();
    EXPECT_EQ(e.kind, EventKind::kDelivery);
    EXPECT_EQ(e.node, 7u);
    EXPECT_EQ(e.payload, 42u);
    EXPECT_DOUBLE_EQ(e.time, 1.5);
}

TEST(EventQueue, InterleavedPushPop) {
    EventQueue q;
    q.push(1.0, EventKind::kTimer, 0, 0);
    EXPECT_EQ(q.pop().node, 0u);
    q.push(3.0, EventKind::kTimer, 1, 0);
    q.push(2.0, EventKind::kTimer, 2, 0);
    EXPECT_EQ(q.pop().node, 2u);
    q.push(2.5, EventKind::kTimer, 3, 0);
    EXPECT_EQ(q.pop().node, 3u);
    EXPECT_EQ(q.pop().node, 1u);
}

// ------------------------------------------------------------ heavy load --
// The traffic plane keeps tens of thousands of events pending in one
// queue; these pin the ordering contract at that scale.

TEST(EventQueueHeavyLoad, EqualTimestampsDrainInInsertionOrder) {
    // 10k events at the identical timestamp must pop strictly FIFO — the
    // tie-break the whole determinism contract rests on.
    EventQueue q;
    constexpr std::size_t kEvents = 10000;
    for (std::size_t i = 0; i < kEvents; ++i) {
        q.push(5.0, EventKind::kDelivery, static_cast<NodeId>(i % 97), i);
    }
    for (std::size_t i = 0; i < kEvents; ++i) {
        const Event e = q.pop();
        ASSERT_EQ(e.payload, i) << "tie-break broke at event " << i;
        ASSERT_DOUBLE_EQ(e.time, 5.0);
    }
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueHeavyLoad, PushDuringDrainKeepsTieOrder) {
    // Events inserted *while draining* an equal-time batch must land after
    // the already-queued ties (their seq is larger), never starve, and
    // never jump the queue.
    EventQueue q;
    for (std::size_t i = 0; i < 1000; ++i) q.push(1.0, EventKind::kTimer, 0, i);
    std::vector<std::size_t> order;
    std::size_t next_payload = 1000;
    while (!q.empty()) {
        const Event e = q.pop();
        order.push_back(e.payload);
        // The first 500 pops each respawn one same-time event.
        if (order.size() <= 500) q.push(1.0, EventKind::kTimer, 0, next_payload++);
    }
    ASSERT_EQ(order.size(), 1500u);
    for (std::size_t i = 0; i < order.size(); ++i) {
        ASSERT_EQ(order[i], i) << "respawned tie popped out of order at " << i;
    }
}

TEST(EventQueueHeavyLoad, NoStarvationAcrossMixedTimes) {
    // >10k pending events across a handful of timestamps: every event
    // pops exactly once, globally ordered by (time, insertion seq).
    EventQueue q;
    constexpr std::size_t kEvents = 12000;
    std::vector<char> seen(kEvents, 0);
    for (std::size_t i = 0; i < kEvents; ++i) {
        q.push(static_cast<double>(i % 7), EventKind::kControl, 0, i);
    }
    double last_time = -1.0;
    std::uint64_t last_seq = 0;
    std::size_t popped = 0;
    while (!q.empty()) {
        const Event e = q.pop();
        if (e.time == last_time) {
            ASSERT_GT(e.seq, last_seq) << "tie regressed at pop " << popped;
        } else {
            ASSERT_GT(e.time, last_time) << "time regressed at pop " << popped;
        }
        last_time = e.time;
        last_seq = e.seq;
        ASSERT_FALSE(seen[e.payload]) << "event " << e.payload << " popped twice";
        seen[e.payload] = 1;
        ++popped;
    }
    EXPECT_EQ(popped, kEvents);
}

}  // namespace
}  // namespace adhoc
