// Unit tests for the deterministic event queue.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    q.push(3.0, EventKind::kTimer, 0, 0);
    q.push(1.0, EventKind::kTimer, 1, 0);
    q.push(2.0, EventKind::kTimer, 2, 0);
    EXPECT_EQ(q.pop().node, 1u);
    EXPECT_EQ(q.pop().node, 2u);
    EXPECT_EQ(q.pop().node, 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesResolveFifo) {
    EventQueue q;
    for (NodeId v = 0; v < 10; ++v) q.push(5.0, EventKind::kDelivery, v, v);
    for (NodeId v = 0; v < 10; ++v) {
        const Event e = q.pop();
        EXPECT_EQ(e.node, v);
        EXPECT_EQ(e.payload, v);
    }
}

TEST(EventQueue, MixedTimesAndTies) {
    EventQueue q;
    q.push(2.0, EventKind::kTimer, 0, 0);
    q.push(1.0, EventKind::kTimer, 1, 0);
    q.push(2.0, EventKind::kTimer, 2, 0);
    q.push(1.0, EventKind::kTimer, 3, 0);
    EXPECT_EQ(q.pop().node, 1u);
    EXPECT_EQ(q.pop().node, 3u);
    EXPECT_EQ(q.pop().node, 0u);
    EXPECT_EQ(q.pop().node, 2u);
}

TEST(EventQueue, SizeAndClear) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.push(1.0, EventKind::kTimer, 0, 0);
    q.push(2.0, EventKind::kTimer, 0, 0);
    EXPECT_EQ(q.size(), 2u);
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PayloadAndKindPreserved) {
    EventQueue q;
    q.push(1.5, EventKind::kDelivery, 7, 42);
    const Event e = q.pop();
    EXPECT_EQ(e.kind, EventKind::kDelivery);
    EXPECT_EQ(e.node, 7u);
    EXPECT_EQ(e.payload, 42u);
    EXPECT_DOUBLE_EQ(e.time, 1.5);
}

TEST(EventQueue, InterleavedPushPop) {
    EventQueue q;
    q.push(1.0, EventKind::kTimer, 0, 0);
    EXPECT_EQ(q.pop().node, 0u);
    q.push(3.0, EventKind::kTimer, 1, 0);
    q.push(2.0, EventKind::kTimer, 2, 0);
    EXPECT_EQ(q.pop().node, 2u);
    q.push(2.5, EventKind::kTimer, 3, 0);
    EXPECT_EQ(q.pop().node, 3u);
    EXPECT_EQ(q.pop().node, 1u);
}

}  // namespace
}  // namespace adhoc
