// Unit tests for the exact minimum-CDS solver and approximation-quality
// cross-checks of the heuristics against ground truth.

#include "analysis/exact_cds.hpp"

#include <gtest/gtest.h>

#include "algorithms/guha_khuller.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(ExactCds, DegenerateGraphs) {
    EXPECT_EQ(minimum_cds_size(Graph(1)), 0u);
    EXPECT_EQ(minimum_cds_size(path_graph(2)), 1u);
    EXPECT_EQ(minimum_cds_size(complete_graph(5)), 1u);
    EXPECT_EQ(minimum_cds_size(star_graph(7)), 1u);
}

TEST(ExactCds, KnownOptima) {
    EXPECT_EQ(minimum_cds_size(path_graph(5)), 3u);   // interior nodes
    EXPECT_EQ(minimum_cds_size(cycle_graph(6)), 4u);  // n-2 for cycles
    EXPECT_EQ(minimum_cds_size(cycle_graph(5)), 3u);
    EXPECT_EQ(minimum_cds_size(grid_graph(2, 3)), 2u);
}

TEST(ExactCds, ResultIsActuallyACds) {
    Rng rng(281);
    UnitDiskParams params;
    params.node_count = 14;
    params.average_degree = 4.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        const auto cds = minimum_cds(net.graph);
        ASSERT_TRUE(cds.has_value());
        EXPECT_TRUE(is_cds(net.graph, *cds)) << i;
    }
}

TEST(ExactCds, RejectsLargeGraphs) {
    EXPECT_FALSE(minimum_cds(grid_graph(5, 6)).has_value());  // 30 > 24
}

TEST(ExactCds, NoSmallerCdsExists) {
    // Spot-check minimality by brute force on a small graph: every set of
    // size opt-1 must fail.
    const Graph g = grid_graph(3, 3);
    const auto opt = minimum_cds_size(g);
    ASSERT_TRUE(opt.has_value());
    ASSERT_GE(*opt, 1u);
    // Exhaustive check over all subsets of size opt-1.
    const std::size_t n = g.node_count();
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        std::size_t bits = 0;
        std::vector<char> set(n, 0);
        for (std::size_t v = 0; v < n; ++v) {
            if (mask & (1u << v)) {
                set[v] = 1;
                ++bits;
            }
        }
        if (bits != *opt - 1) continue;
        EXPECT_FALSE(is_cds(g, set)) << "smaller CDS found: mask " << mask;
    }
}

TEST(ExactCds, HeuristicsNeverBeatOptimum) {
    Rng rng(283);
    UnitDiskParams params;
    params.node_count = 16;
    params.average_degree = 5.0;
    for (int i = 0; i < 15; ++i) {
        const auto net = generate_network_checked(params, rng);
        const auto opt = minimum_cds_size(net.graph);
        ASSERT_TRUE(opt.has_value());
        const PriorityKeys keys(net.graph, PriorityScheme::kDegree);
        const auto generic = generic_static_forward_set(net.graph, 2, keys, {});
        const auto greedy = guha_khuller_cds(net.graph);
        EXPECT_GE(set_size(generic), *opt) << i;
        EXPECT_GE(set_size(greedy), *opt) << i;
    }
}

TEST(ExactCds, GreedyStaysWithinSmallFactorOfOptimum) {
    // The Section 1 observation quantified at small scale: greedy is close
    // to optimal on random unit disk graphs.
    Rng rng(293);
    UnitDiskParams params;
    params.node_count = 16;
    params.average_degree = 5.0;
    double greedy_total = 0, opt_total = 0;
    for (int i = 0; i < 20; ++i) {
        const auto net = generate_network_checked(params, rng);
        greedy_total += static_cast<double>(set_size(guha_khuller_cds(net.graph)));
        opt_total += static_cast<double>(*minimum_cds_size(net.graph));
    }
    EXPECT_LE(greedy_total, opt_total * 1.5);
}

}  // namespace
}  // namespace adhoc
