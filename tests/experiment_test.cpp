// Unit tests for the paired sweep harness.

#include "stats/experiment.hpp"

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"

namespace adhoc {
namespace {

ExperimentConfig small_config() {
    ExperimentConfig cfg;
    cfg.node_counts = {20, 30};
    cfg.average_degree = 6.0;
    cfg.min_runs = 5;
    cfg.max_runs = 15;
    cfg.seed = 7;
    return cfg;
}

TEST(Experiment, FloodingMeanEqualsN) {
    const FloodingAlgorithm flooding;
    const auto series = run_sweep({&flooding}, small_config());
    ASSERT_EQ(series.size(), 1u);
    ASSERT_EQ(series[0].points.size(), 2u);
    EXPECT_DOUBLE_EQ(series[0].points[0].mean_forward, 20.0);
    EXPECT_DOUBLE_EQ(series[0].points[1].mean_forward, 30.0);
    EXPECT_EQ(series[0].points[0].delivery_failures, 0u);
}

TEST(Experiment, PairedComparisonOrdersFloodingAbovePruning) {
    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2));
    const auto series = run_sweep({&flooding, &generic}, small_config());
    ASSERT_EQ(series.size(), 2u);
    for (std::size_t i = 0; i < series[0].points.size(); ++i) {
        EXPECT_GT(series[0].points[i].mean_forward, series[1].points[i].mean_forward);
    }
}

TEST(Experiment, RunCountsWithinBounds) {
    const FloodingAlgorithm flooding;
    const auto cfg = small_config();
    const auto points = run_cell({&flooding}, 20, cfg);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_GE(points[0].runs, cfg.min_runs);
    EXPECT_LE(points[0].runs, cfg.max_runs);
}

TEST(Experiment, ConstantMetricStopsAtMinRuns) {
    // Flooding's forward count is constant (n): the CI is 0 after min_runs.
    const FloodingAlgorithm flooding;
    auto cfg = small_config();
    cfg.max_runs = 500;
    const auto points = run_cell({&flooding}, 20, cfg);
    EXPECT_EQ(points[0].runs, cfg.min_runs);
}

TEST(Experiment, DeterministicUnderSeed) {
    const GenericBroadcast generic(generic_fr_config(2));
    const auto a = run_cell({&generic}, 25, small_config());
    const auto b = run_cell({&generic}, 25, small_config());
    EXPECT_DOUBLE_EQ(a[0].mean_forward, b[0].mean_forward);
    EXPECT_EQ(a[0].runs, b[0].runs);
}

TEST(Experiment, SeriesCarryNames) {
    const FloodingAlgorithm flooding;
    const auto series = run_sweep({&flooding}, small_config());
    EXPECT_EQ(series[0].name, "Flooding");
}

TEST(Experiment, NoDeliveryFailuresForDeterministicSchemes) {
    const GenericBroadcast generic(generic_fr_config(2));
    auto cfg = small_config();
    cfg.node_counts = {30};
    const auto series = run_sweep({&generic}, cfg);
    EXPECT_EQ(series[0].points[0].delivery_failures, 0u);
}

}  // namespace
}  // namespace adhoc
