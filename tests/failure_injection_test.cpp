// Failure-injection tests: packet loss and jitter on the medium.  The
// paper assumes error-free transmission (assumption 1); these tests verify
// the *expected degradation* when that assumption is broken, and that the
// simulator stays well-formed under it.

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "verify/invariants.hpp"

namespace adhoc {
namespace {

UnitDiskNetwork test_network(std::uint64_t seed, std::size_t n = 60, double d = 8.0) {
    Rng rng(seed);
    UnitDiskParams params;
    params.node_count = n;
    params.average_degree = d;
    return generate_network_checked(params, rng);
}

double mean_delivery(const BroadcastAlgorithm& algo, const Graph& g, MediumConfig medium,
                     int runs, std::uint64_t base_seed) {
    double total = 0;
    for (int i = 0; i < runs; ++i) {
        Rng rng(runner::derive_run_seed(base_seed, g.node_count(), medium.loss_probability,
                                        static_cast<std::uint64_t>(i)));
        const auto result = algo.broadcast_traced(g, 0, rng, medium);
        total += static_cast<double>(result.received_count) /
                 static_cast<double>(g.node_count());
    }
    return total / runs;
}

TEST(FailureInjection, LossDegradesDeliveryMonotonically) {
    const auto net = test_network(211);
    const FloodingAlgorithm flooding;
    const double d0 = mean_delivery(flooding, net.graph, MediumConfig{}, 10, 211);
    MediumConfig lossy10;
    lossy10.loss_probability = 0.1;
    MediumConfig lossy50;
    lossy50.loss_probability = 0.5;
    const double d10 = mean_delivery(flooding, net.graph, lossy10, 10, 211);
    const double d50 = mean_delivery(flooding, net.graph, lossy50, 10, 211);
    EXPECT_DOUBLE_EQ(d0, 1.0);
    EXPECT_LE(d50, d10 + 1e-9);
    EXPECT_LT(d50, 1.0);
    // Pinned goldens: the derived-seed streams make these exact (592/600
    // receipts across the ten 50%-loss runs).
    EXPECT_DOUBLE_EQ(d10, 1.0);
    EXPECT_DOUBLE_EQ(d50, 0.98666666666666658);
}

TEST(FailureInjection, FloodingMoreRobustThanAggressivePruning) {
    // The redundancy/reliability trade-off: under loss, flooding's extra
    // transmissions deliver to more nodes than a minimal CDS scheme.
    const auto net = test_network(223);
    MediumConfig lossy;
    lossy.loss_probability = 0.25;
    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2));
    const double df = mean_delivery(flooding, net.graph, lossy, 15, 223);
    const double dg = mean_delivery(generic, net.graph, lossy, 15, 223);
    EXPECT_GT(df, dg);
}

TEST(FailureInjection, InvariantsHoldUnderLossAndJitter) {
    const auto net = test_network(227);
    MediumConfig medium;
    medium.loss_probability = 0.3;
    medium.jitter = 2.0;
    const GenericBroadcast generic(generic_frb_config(2));
    for (std::uint64_t run = 0; run < 5; ++run) {
        Rng rng(runner::derive_run_seed(227, net.graph.node_count(), medium.jitter, run));
        const auto result = generic.broadcast_traced(net.graph, 0, rng, medium);
        const auto report = check_invariants(net.graph, 0, result);
        EXPECT_TRUE(report.ok) << report.describe();
    }
}

TEST(FailureInjection, JitterAloneDoesNotBreakCoverage) {
    // Jitter reorders deliveries but loses nothing: deterministic schemes
    // must still cover (the forward set may differ — order-dependent
    // knowledge — but delivery stays complete).
    const auto net = test_network(229);
    MediumConfig medium;
    medium.jitter = 3.0;
    const GenericBroadcast generic(generic_fr_config(2));
    for (std::uint64_t run = 0; run < 10; ++run) {
        Rng rng(runner::derive_run_seed(229, net.graph.node_count(), medium.jitter, run));
        const auto result = generic.broadcast_traced(net.graph, 0, rng, medium);
        EXPECT_TRUE(result.full_delivery) << "run " << run;
    }
}

TEST(FailureInjection, CollisionsDestroySimultaneousArrivals) {
    // Diamond 0-1, 0-2, 1-3, 2-3: flooding from 0 makes 1 and 2 transmit
    // at t=1; both copies reach 3 at t=2 simultaneously and collide.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    MediumConfig medium;
    medium.collisions = true;
    const FloodingAlgorithm flooding;
    Rng rng(1);
    const auto result = flooding.broadcast_traced(g, 0, rng, medium);
    EXPECT_FALSE(result.received[3]);  // the storm victim
    EXPECT_TRUE(result.received[1]);
    EXPECT_TRUE(result.received[2]);
}

TEST(FailureInjection, JitterRelievesCollisions) {
    // Same diamond with a little jitter: the copies arrive at distinct
    // instants and node 3 receives.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    MediumConfig medium;
    medium.collisions = true;
    medium.jitter = 0.1;
    const FloodingAlgorithm flooding;
    std::size_t delivered = 0;
    for (std::uint64_t run = 0; run < 20; ++run) {
        Rng rng(runner::derive_run_seed(101, g.node_count(), medium.jitter, run));
        delivered += flooding.broadcast_traced(g, 0, rng, medium).received[3] ? 1 : 0;
    }
    EXPECT_EQ(delivered, 20u);  // distinct real-valued arrival times
}

TEST(FailureInjection, CollisionsDegradeSynchronizedSchemesAtScale) {
    const auto net = test_network(239, 80, 8.0);
    MediumConfig collide;
    collide.collisions = true;
    const FloodingAlgorithm flooding;
    const double no_jitter = mean_delivery(flooding, net.graph, collide, 10, 239);
    MediumConfig jittered = collide;
    jittered.jitter = 0.05;
    const double with_jitter = mean_delivery(flooding, net.graph, jittered, 10, 239);
    EXPECT_LT(no_jitter, 0.999);        // the broadcast storm bites
    EXPECT_GT(with_jitter, no_jitter);  // small jitter relieves it
    EXPECT_GT(with_jitter, 0.999);
}

TEST(FailureInjection, TotalLossIsolatesSource) {
    const auto net = test_network(233);
    MediumConfig medium;
    medium.loss_probability = 1.0;
    const FloodingAlgorithm flooding;
    Rng rng(1);
    const auto result = flooding.broadcast_traced(net.graph, 0, rng, medium);
    EXPECT_EQ(result.received_count, 1u);
    EXPECT_EQ(result.forward_count, 1u);
}

}  // namespace
}  // namespace adhoc
