/// \file fault_plan_test.cpp
/// \brief Fault-plan generation and fault-session state-machine tests,
/// including the satellite-6 golden pin of the seed-substream derivation.

#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "faults/fault_session.hpp"
#include "graph/graph.hpp"
#include "runner/seed.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::faults {
namespace {

FaultSpec busy_spec() {
    FaultSpec spec;
    spec.crash_rate = 0.4;
    spec.link_churn_rate = 0.3;
    spec.asymmetry_rate = 0.3;
    spec.hello_burst_rate = 0.3;
    return spec;
}

TEST(FaultPlan, DeterministicAcrossCalls) {
    const Graph g = grid_graph(4, 4);
    for (std::uint64_t run = 0; run < 20; ++run) {
        const FaultPlan a = make_fault_plan(busy_spec(), g, 0, 99, run);
        const FaultPlan b = make_fault_plan(busy_spec(), g, 0, 99, run);
        EXPECT_EQ(a, b) << "run " << run;
    }
}

TEST(FaultPlan, DistinctRunIndicesDiffer) {
    const Graph g = grid_graph(5, 5);
    std::size_t distinct = 0;
    const FaultPlan first = make_fault_plan(busy_spec(), g, 0, 7, 0);
    for (std::uint64_t run = 1; run < 20; ++run) {
        if (!(make_fault_plan(busy_spec(), g, 0, 7, run) == first)) ++distinct;
    }
    EXPECT_GE(distinct, 18u);
}

TEST(FaultPlan, TelemetryCannotPerturbGeneration) {
    // The generator draws from its own derive_run_seed substream — an
    // active telemetry scope (which meters other RNG consumers) must not
    // shift a single draw.
    const Graph g = grid_graph(4, 4);
    const FaultPlan bare = make_fault_plan(busy_spec(), g, 1, 5, 3);
    telemetry::RunScope scope;
    const FaultPlan metered = make_fault_plan(busy_spec(), g, 1, 5, 3);
    EXPECT_EQ(bare, metered);
}

TEST(FaultPlan, SourceIsProtectedByDefault) {
    const Graph g = cycle_graph(12);
    FaultSpec spec;
    spec.crash_rate = 1.0;  // everyone else goes down
    for (std::uint64_t run = 0; run < 10; ++run) {
        const FaultPlan plan = make_fault_plan(spec, g, 5, 42, run);
        for (const FaultEvent& e : plan.events) {
            if (e.kind == FaultKind::kNodeCrash) {
                EXPECT_NE(e.node, 5u);
            }
        }
    }
}

TEST(FaultPlan, EventsSortedByTime) {
    const Graph g = grid_graph(5, 5);
    const FaultPlan plan = make_fault_plan(busy_spec(), g, 0, 11, 2);
    EXPECT_FALSE(plan.events.empty());
    EXPECT_TRUE(std::is_sorted(
        plan.events.begin(), plan.events.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; }));
}

// Satellite 6 (golden pin): the generator seed must flow through the
// derive_run_seed substream tagged 0xfa017c0000000001, and the directed
// loss stream through splitmix64 of that seed xor 0x10550000000000a5.
// These literals are the contract — changing the derivation breaks every
// pinned corpus digest and the --jobs invariance of BENCH_resilience.
TEST(FaultPlan, GoldenSeedSubstreamDerivation) {
    const Graph g = grid_graph(3, 3);
    FaultSpec spec;
    spec.crash_rate = 0.25;
    const FaultPlan plan = make_fault_plan(spec, g, 0, 1234, 7);
    const std::uint64_t expected_seed = runner::derive_run_seed(
        1234ULL ^ 0xfa017c0000000001ULL, g.node_count(), 0.25, 7);
    EXPECT_EQ(plan.loss_stream_seed,
              runner::splitmix64(expected_seed ^ 0x10550000000000a5ULL));
    // Pin the raw substream value itself so the derive_run_seed chain (and
    // its portability across platforms) is covered by a literal.
    EXPECT_EQ(expected_seed, 0x784c58bad22ba112ULL);
}

// ---- validate_plan negative paths -----------------------------------
// Every rejection must carry the offending entry index and value in the
// exception text (the fuzzer and bench harness surface these verbatim).

std::string thrown_message(const FaultPlan& plan, std::size_t n) {
    try {
        validate_plan(plan, n);
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return {};
}

TEST(FaultPlanValidate, AcceptsGeneratedPlans) {
    const Graph g = grid_graph(5, 5);
    for (std::uint64_t run = 0; run < 8; ++run) {
        const FaultPlan plan = make_fault_plan(busy_spec(), g, 0, 31, run);
        EXPECT_NO_THROW(validate_plan(plan, g.node_count())) << "run " << run;
    }
    EXPECT_NO_THROW(validate_plan(FaultPlan{}, 0));  // empty plan, empty graph
}

TEST(FaultPlanValidate, RejectsNegativeAndNonFiniteTimes) {
    FaultPlan plan;
    plan.events = {{-1.0, FaultKind::kNodeCrash, 1, Edge{}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
    const std::string msg = thrown_message(plan, 4);
    EXPECT_NE(msg.find("-1"), std::string::npos) << msg;

    plan.events = {{std::numeric_limits<double>::infinity(),
                    FaultKind::kNodeCrash, 1, Edge{}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
    plan.events = {{std::numeric_limits<double>::quiet_NaN(),
                    FaultKind::kNodeCrash, 1, Edge{}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsOutOfRangeNodes) {
    FaultPlan plan;
    plan.events = {{1.0, FaultKind::kNodeCrash, 9, Edge{}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
    const std::string msg = thrown_message(plan, 4);
    EXPECT_NE(msg.find('9'), std::string::npos) << msg;

    plan.events = {{1.0, FaultKind::kLinkDown, kInvalidNode, Edge{1, 7}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsRecoverBeforeCrash) {
    FaultPlan plan;
    plan.events = {{2.0, FaultKind::kNodeRecover, 1, Edge{}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);

    // A recover *after* the crash is fine; a second recover is not.
    plan.events = {{1.0, FaultKind::kNodeCrash, 1, Edge{}},
                   {2.0, FaultKind::kNodeRecover, 1, Edge{}}};
    EXPECT_NO_THROW(validate_plan(plan, 4));
    plan.events.push_back({3.0, FaultKind::kNodeRecover, 1, Edge{}});
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsDuplicateCrashWhileDown) {
    FaultPlan plan;
    plan.events = {{1.0, FaultKind::kNodeCrash, 2, Edge{}},
                   {2.0, FaultKind::kNodeCrash, 2, Edge{}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);

    // crash -> recover -> crash again is a legal churn cycle.
    plan.events = {{1.0, FaultKind::kNodeCrash, 2, Edge{}},
                   {2.0, FaultKind::kNodeRecover, 2, Edge{}},
                   {3.0, FaultKind::kNodeCrash, 2, Edge{}}};
    EXPECT_NO_THROW(validate_plan(plan, 4));
}

TEST(FaultPlanValidate, RejectsNonCanonicalLinksAndBadAsymmetry) {
    FaultPlan plan;
    plan.events = {{1.0, FaultKind::kLinkDown, kInvalidNode, Edge{3, 1}}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);

    plan.events.clear();
    plan.asymmetry = {{Edge{0, 1}, 1.5, 0.0}};  // loss > 1
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
    plan.asymmetry = {{Edge{0, 1}, 0.2, 0.3}, {Edge{0, 1}, 0.4, 0.1}};
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);  // dup link
    plan.asymmetry = {{Edge{0, 1}, 0.2, 0.3}};
    EXPECT_NO_THROW(validate_plan(plan, 4));
}

TEST(FaultPlanValidate, RejectsBadHelloBursts) {
    FaultPlan plan;
    plan.hello_bursts = {{7, 0, 2}};  // node out of range
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
    plan.hello_bursts = {{1, 0, 0}};  // zero rounds
    EXPECT_THROW(validate_plan(plan, 4), std::invalid_argument);
    plan.hello_bursts = {{1, 0, 2}};
    EXPECT_NO_THROW(validate_plan(plan, 4));
}

// ---- bucket_plan: the window-bucketing contract ---------------------

TEST(FaultPlanBucket, RoundsTimesUpToWindowBoundaries) {
    FaultPlan plan;
    plan.events = {{0.0, FaultKind::kNodeCrash, 0, Edge{}},
                   {0.3, FaultKind::kNodeCrash, 1, Edge{}},
                   {1.0, FaultKind::kNodeRecover, 1, Edge{}},
                   {1.2, FaultKind::kLinkDown, kInvalidNode, Edge{0, 2}}};
    const FaultPlan bucketed = bucket_plan(plan, 1.0);
    ASSERT_EQ(bucketed.events.size(), 4u);
    EXPECT_EQ(bucketed.events[0].time, 0.0);  // already on a boundary
    EXPECT_EQ(bucketed.events[1].time, 1.0);
    EXPECT_EQ(bucketed.events[2].time, 1.0);  // exact multiple: unmoved
    EXPECT_EQ(bucketed.events[3].time, 2.0);
    // Stable order: the crash of node 1 precedes its recover at the shared
    // boundary because it came first in the input.
    EXPECT_EQ(bucketed.events[1].kind, FaultKind::kNodeCrash);
    EXPECT_EQ(bucketed.events[2].kind, FaultKind::kNodeRecover);
}

TEST(FaultPlanBucket, PreservesNonEventFieldsAndValidity) {
    const Graph g = grid_graph(5, 5);
    const FaultPlan plan = make_fault_plan(busy_spec(), g, 0, 17, 4);
    const FaultPlan bucketed = bucket_plan(plan, 1.0);
    EXPECT_EQ(bucketed.asymmetry, plan.asymmetry);
    EXPECT_EQ(bucketed.hello_bursts, plan.hello_bursts);
    EXPECT_EQ(bucketed.loss_stream_seed, plan.loss_stream_seed);
    EXPECT_EQ(bucketed.events.size(), plan.events.size());
    // Bucketing never reorders a crash past its recover, so the bucketed
    // plan stays structurally valid.
    EXPECT_NO_THROW(validate_plan(bucketed, g.node_count()));
    EXPECT_TRUE(std::is_sorted(
        bucketed.events.begin(), bucketed.events.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; }));
}

TEST(FaultPlanBucket, RejectsBadWindow) {
    EXPECT_THROW((void)bucket_plan(FaultPlan{}, 0.0), std::invalid_argument);
    EXPECT_THROW((void)bucket_plan(FaultPlan{}, -1.0), std::invalid_argument);
    EXPECT_THROW((void)bucket_plan(FaultPlan{}, std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
}

TEST(FaultSession, AppliesEventsInOrder) {
    FaultPlan plan;
    plan.events = {
        {1.0, FaultKind::kNodeCrash, 2, Edge{}},
        {2.0, FaultKind::kLinkDown, kInvalidNode, Edge{0, 1}},
        {3.0, FaultKind::kNodeRecover, 2, Edge{}},
        {4.0, FaultKind::kLinkUp, kInvalidNode, Edge{0, 1}},
    };
    FaultSession session;
    session.reset(plan, 4);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(session.node_up(2));
    EXPECT_TRUE(session.link_up(0, 1));

    session.apply(plan.events[0]);
    EXPECT_FALSE(session.node_up(2));
    EXPECT_FALSE(session.link_up(1, 2));  // endpoint down kills the link

    session.apply(plan.events[1]);
    EXPECT_FALSE(session.link_up(0, 1));
    EXPECT_FALSE(session.link_up(1, 0));  // symmetric

    session.apply(plan.events[2]);
    EXPECT_TRUE(session.node_up(2));
    EXPECT_TRUE(session.link_up(1, 2));

    session.apply(plan.events[3]);
    EXPECT_TRUE(session.link_up(0, 1));
}

TEST(FaultSession, DirectedLossStreamIsCounterBased) {
    FaultPlan plan;
    plan.asymmetry = {{Edge{0, 1}, 0.5, 0.5}};
    plan.loss_stream_seed = 0xabcdef;
    FaultSession a;
    FaultSession b;
    a.reset(plan, 2);
    b.reset(plan, 2);
    // Same session state + same query order = same draws, regardless of
    // any other RNG activity in the process.
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.drop_directed(0, 1), b.drop_directed(0, 1)) << i;
    }
}

TEST(FaultSession, FinalStateReplaysWholeSchedule) {
    FaultPlan plan;
    plan.events = {
        {1.0, FaultKind::kNodeCrash, 1, Edge{}},
        {2.0, FaultKind::kNodeCrash, 3, Edge{}},
        {3.0, FaultKind::kNodeRecover, 1, Edge{}},
        {4.0, FaultKind::kLinkDown, kInvalidNode, Edge{0, 2}},
    };
    const FinalFaultState final = final_fault_state(plan, 5);
    EXPECT_EQ(final.node_down, (std::vector<char>{0, 0, 0, 1, 0}));
    ASSERT_EQ(final.links_down.size(), 1u);
    EXPECT_EQ(final.links_down[0], (Edge{0, 2}));
}

}  // namespace
}  // namespace adhoc::faults
