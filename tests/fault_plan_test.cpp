/// \file fault_plan_test.cpp
/// \brief Fault-plan generation and fault-session state-machine tests,
/// including the satellite-6 golden pin of the seed-substream derivation.

#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "faults/fault_session.hpp"
#include "graph/graph.hpp"
#include "runner/seed.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::faults {
namespace {

FaultSpec busy_spec() {
    FaultSpec spec;
    spec.crash_rate = 0.4;
    spec.link_churn_rate = 0.3;
    spec.asymmetry_rate = 0.3;
    spec.hello_burst_rate = 0.3;
    return spec;
}

TEST(FaultPlan, DeterministicAcrossCalls) {
    const Graph g = grid_graph(4, 4);
    for (std::uint64_t run = 0; run < 20; ++run) {
        const FaultPlan a = make_fault_plan(busy_spec(), g, 0, 99, run);
        const FaultPlan b = make_fault_plan(busy_spec(), g, 0, 99, run);
        EXPECT_EQ(a, b) << "run " << run;
    }
}

TEST(FaultPlan, DistinctRunIndicesDiffer) {
    const Graph g = grid_graph(5, 5);
    std::size_t distinct = 0;
    const FaultPlan first = make_fault_plan(busy_spec(), g, 0, 7, 0);
    for (std::uint64_t run = 1; run < 20; ++run) {
        if (!(make_fault_plan(busy_spec(), g, 0, 7, run) == first)) ++distinct;
    }
    EXPECT_GE(distinct, 18u);
}

TEST(FaultPlan, TelemetryCannotPerturbGeneration) {
    // The generator draws from its own derive_run_seed substream — an
    // active telemetry scope (which meters other RNG consumers) must not
    // shift a single draw.
    const Graph g = grid_graph(4, 4);
    const FaultPlan bare = make_fault_plan(busy_spec(), g, 1, 5, 3);
    telemetry::RunScope scope;
    const FaultPlan metered = make_fault_plan(busy_spec(), g, 1, 5, 3);
    EXPECT_EQ(bare, metered);
}

TEST(FaultPlan, SourceIsProtectedByDefault) {
    const Graph g = cycle_graph(12);
    FaultSpec spec;
    spec.crash_rate = 1.0;  // everyone else goes down
    for (std::uint64_t run = 0; run < 10; ++run) {
        const FaultPlan plan = make_fault_plan(spec, g, 5, 42, run);
        for (const FaultEvent& e : plan.events) {
            if (e.kind == FaultKind::kNodeCrash) {
                EXPECT_NE(e.node, 5u);
            }
        }
    }
}

TEST(FaultPlan, EventsSortedByTime) {
    const Graph g = grid_graph(5, 5);
    const FaultPlan plan = make_fault_plan(busy_spec(), g, 0, 11, 2);
    EXPECT_FALSE(plan.events.empty());
    EXPECT_TRUE(std::is_sorted(
        plan.events.begin(), plan.events.end(),
        [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; }));
}

// Satellite 6 (golden pin): the generator seed must flow through the
// derive_run_seed substream tagged 0xfa017c0000000001, and the directed
// loss stream through splitmix64 of that seed xor 0x10550000000000a5.
// These literals are the contract — changing the derivation breaks every
// pinned corpus digest and the --jobs invariance of BENCH_resilience.
TEST(FaultPlan, GoldenSeedSubstreamDerivation) {
    const Graph g = grid_graph(3, 3);
    FaultSpec spec;
    spec.crash_rate = 0.25;
    const FaultPlan plan = make_fault_plan(spec, g, 0, 1234, 7);
    const std::uint64_t expected_seed = runner::derive_run_seed(
        1234ULL ^ 0xfa017c0000000001ULL, g.node_count(), 0.25, 7);
    EXPECT_EQ(plan.loss_stream_seed,
              runner::splitmix64(expected_seed ^ 0x10550000000000a5ULL));
    // Pin the raw substream value itself so the derive_run_seed chain (and
    // its portability across platforms) is covered by a literal.
    EXPECT_EQ(expected_seed, 0x784c58bad22ba112ULL);
}

TEST(FaultSession, AppliesEventsInOrder) {
    FaultPlan plan;
    plan.events = {
        {1.0, FaultKind::kNodeCrash, 2, Edge{}},
        {2.0, FaultKind::kLinkDown, kInvalidNode, Edge{0, 1}},
        {3.0, FaultKind::kNodeRecover, 2, Edge{}},
        {4.0, FaultKind::kLinkUp, kInvalidNode, Edge{0, 1}},
    };
    FaultSession session;
    session.reset(plan, 4);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(session.node_up(2));
    EXPECT_TRUE(session.link_up(0, 1));

    session.apply(plan.events[0]);
    EXPECT_FALSE(session.node_up(2));
    EXPECT_FALSE(session.link_up(1, 2));  // endpoint down kills the link

    session.apply(plan.events[1]);
    EXPECT_FALSE(session.link_up(0, 1));
    EXPECT_FALSE(session.link_up(1, 0));  // symmetric

    session.apply(plan.events[2]);
    EXPECT_TRUE(session.node_up(2));
    EXPECT_TRUE(session.link_up(1, 2));

    session.apply(plan.events[3]);
    EXPECT_TRUE(session.link_up(0, 1));
}

TEST(FaultSession, DirectedLossStreamIsCounterBased) {
    FaultPlan plan;
    plan.asymmetry = {{Edge{0, 1}, 0.5, 0.5}};
    plan.loss_stream_seed = 0xabcdef;
    FaultSession a;
    FaultSession b;
    a.reset(plan, 2);
    b.reset(plan, 2);
    // Same session state + same query order = same draws, regardless of
    // any other RNG activity in the process.
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.drop_directed(0, 1), b.drop_directed(0, 1)) << i;
    }
}

TEST(FaultSession, FinalStateReplaysWholeSchedule) {
    FaultPlan plan;
    plan.events = {
        {1.0, FaultKind::kNodeCrash, 1, Edge{}},
        {2.0, FaultKind::kNodeCrash, 3, Edge{}},
        {3.0, FaultKind::kNodeRecover, 1, Edge{}},
        {4.0, FaultKind::kLinkDown, kInvalidNode, Edge{0, 2}},
    };
    const FinalFaultState final = final_fault_state(plan, 5);
    EXPECT_EQ(final.node_down, (std::vector<char>{0, 0, 0, 1, 0}));
    ASSERT_EQ(final.links_down.size(), 1u);
    EXPECT_EQ(final.links_down[0], (Edge{0, 2}));
}

}  // namespace
}  // namespace adhoc::faults
