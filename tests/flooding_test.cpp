// Unit tests for the flooding baseline.

#include "algorithms/flooding.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Flooding, EveryNodeForwardsOnConnectedGraph) {
    const FloodingAlgorithm algo;
    for (const Graph& g : {path_graph(7), cycle_graph(5), grid_graph(3, 4)}) {
        Rng rng(1);
        const auto result = algo.broadcast(g, 0, rng);
        EXPECT_EQ(result.forward_count, g.node_count());
        EXPECT_TRUE(result.full_delivery);
    }
}

TEST(Flooding, ForwardSetIsTriviallyCds) {
    const FloodingAlgorithm algo;
    const Graph g = grid_graph(4, 4);
    Rng rng(2);
    const auto result = algo.broadcast(g, 5, rng);
    EXPECT_TRUE(check_broadcast(g, 5, result).ok());
}

TEST(Flooding, RandomNetworkFullCoverage) {
    Rng rng(11);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    const FloodingAlgorithm algo;
    const auto result = algo.broadcast(net.graph, 10, rng);
    EXPECT_EQ(result.forward_count, 60u);
    EXPECT_TRUE(result.full_delivery);
}

TEST(Flooding, CompletionTimeIsEccentricityPlusFinalEcho) {
    const FloodingAlgorithm algo;
    const Graph g = path_graph(9);
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    // Far end receives at t=8, transmits, and its redundant copy lands at 9.
    EXPECT_DOUBLE_EQ(result.completion_time, 9.0);
}

TEST(Flooding, Name) { EXPECT_EQ(FloodingAlgorithm().name(), "Flooding"); }

}  // namespace
}  // namespace adhoc
