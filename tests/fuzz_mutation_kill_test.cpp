/// \file fuzz_mutation_kill_test.cpp
/// \brief The oracle mutation-kill gate: every deliberately broken variant
/// must be detected, shrunk to a tiny repro, and stay broken on replay.

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hpp"
#include "fuzz/mutants.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/repro.hpp"

namespace adhoc::fuzz {
namespace {

TEST(FuzzMutationKill, EveryMutantIsKilledAndShrinksSmall) {
    const std::vector<MutantKill> kills = run_mutation_gate(/*base_seed=*/7);
    ASSERT_EQ(kills.size(), mutant_specs().size());
    ASSERT_GE(kills.size(), 4u);  // the gate must cover at least 4 injected bugs

    const AlgorithmPool pool(/*with_mutants=*/true);
    for (const MutantKill& kill : kills) {
        EXPECT_TRUE(kill.killed) << "oracle suite missed mutant " << kill.name;
        if (!kill.killed) continue;
        ASSERT_TRUE(kill.finding.has_value());
        EXPECT_LE(kill.shrunk_nodes, 8u)
            << kill.name << " shrank only to " << kill.shrunk_nodes << " nodes";
        EXPECT_FALSE(kill.oracle.empty());

        // The minimized repro still fails, with the same oracle.
        const CheckReport replayed = check_scenario(kill.finding->shrunk, pool);
        EXPECT_FALSE(replayed.ok) << kill.name << ": shrunk repro passes";
        EXPECT_EQ(replayed.oracle, kill.oracle) << kill.name;
    }
}

TEST(FuzzMutationKill, FindingsSurviveSerialization) {
    const std::vector<MutantKill> kills = run_mutation_gate(/*base_seed=*/11);
    const AlgorithmPool pool(/*with_mutants=*/true);
    for (const MutantKill& kill : kills) {
        if (!kill.killed) continue;  // the other test asserts kills
        Repro repro;
        repro.scenario = kill.finding->shrunk;
        repro.oracle = kill.oracle;
        std::uint64_t digest = 0;
        ASSERT_TRUE(replay_digest(repro.scenario, pool, &digest)) << kill.name;
        repro.digest = digest;

        std::string error;
        const auto parsed = parse_repro(to_repro_json(repro), &error);
        ASSERT_TRUE(parsed.has_value()) << kill.name << ": " << error;

        // Round-tripped scenario replays bit-identically and still trips
        // the same oracle — the .repro file is a faithful repro.
        std::uint64_t replayed_digest = 0;
        ASSERT_TRUE(replay_digest(parsed->scenario, pool, &replayed_digest));
        EXPECT_EQ(replayed_digest, digest) << kill.name;
        const CheckReport check = check_scenario(parsed->scenario, pool);
        EXPECT_FALSE(check.ok) << kill.name;
        EXPECT_EQ(check.oracle, kill.oracle) << kill.name;
    }
}

TEST(FuzzMutationKill, GateIsDeterministic) {
    const std::vector<MutantKill> a = run_mutation_gate(/*base_seed=*/5, 32);
    const std::vector<MutantKill> b = run_mutation_gate(/*base_seed=*/5, 32);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].killed, b[i].killed) << a[i].name;
        EXPECT_EQ(a[i].iterations, b[i].iterations) << a[i].name;
        EXPECT_EQ(a[i].oracle, b[i].oracle) << a[i].name;
        if (a[i].killed && b[i].killed) {
            EXPECT_EQ(a[i].finding->shrunk, b[i].finding->shrunk) << a[i].name;
        }
    }
}

}  // namespace
}  // namespace adhoc::fuzz
