/// \file fuzz_scenario_test.cpp
/// \brief Scenario generation, normalization and .repro round-trip tests.

#include <gtest/gtest.h>

#include <set>

#include "fuzz/repro.hpp"
#include "fuzz/scenario.hpp"
#include "graph/traversal.hpp"

namespace adhoc::fuzz {
namespace {

TEST(FuzzScenario, GenerationIsDeterministic) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        const Scenario a = generate_scenario(123, i);
        const Scenario b = generate_scenario(123, i);
        EXPECT_EQ(a, b) << "index " << i;
    }
}

TEST(FuzzScenario, DistinctIndicesDiffer) {
    std::set<std::uint64_t> fingerprints;
    for (std::uint64_t i = 0; i < 100; ++i) {
        fingerprints.insert(scenario_fingerprint(generate_scenario(7, i)));
    }
    // Scenario space is huge; near-perfect dedup expected.
    EXPECT_GT(fingerprints.size(), 95u);
}

TEST(FuzzScenario, GeneratedScenariosAreNormalized) {
    for (std::uint64_t i = 0; i < 100; ++i) {
        const Scenario s = generate_scenario(99, i);
        EXPECT_EQ(s, normalized(s)) << "index " << i;
        ASSERT_GE(s.node_count, 1u);
        ASSERT_LT(s.source, s.node_count);
        EXPECT_TRUE(is_connected(s.knowledge_graph())) << "index " << i;
    }
}

TEST(FuzzScenario, NormalizationRestrictsToSourceComponent) {
    Scenario s;
    s.node_count = 6;
    // Component {0,1,2} + separate component {3,4}; node 5 isolated.
    s.edges = {{0, 1}, {1, 2}, {3, 4}};
    s.source = 1;
    const Scenario n = normalized(s);
    EXPECT_EQ(n.node_count, 3u);
    EXPECT_EQ(n.source, 1u);  // order-preserving remap keeps relative ids
    EXPECT_EQ(n.edges, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

TEST(FuzzScenario, NormalizationDropsStaleLostEdges) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}, {0, 2}};  // (0,2) is not a knowledge edge
    const Scenario n = normalized(s);
    EXPECT_EQ(n.lost_edges, (std::vector<Edge>{{1, 2}}));
}

TEST(FuzzScenario, ActualGraphRemovesLostEdges) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    EXPECT_TRUE(s.knowledge_graph().has_edge(1, 2));
    EXPECT_FALSE(s.actual_graph().has_edge(1, 2));
    EXPECT_TRUE(s.actual_graph().has_edge(0, 1));
}

TEST(FuzzRepro, RoundTripPreservesEverything) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        Repro repro;
        repro.scenario = generate_scenario(555, i);
        repro.oracle = (i % 2 == 0) ? "pass" : "delivery";
        repro.digest = 0xdeadbeefcafe0000ULL + i;
        repro.note = "round-trip case " + std::to_string(i);
        std::string error;
        const auto parsed = parse_repro(to_repro_json(repro), &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_EQ(parsed->scenario, repro.scenario) << "index " << i;
        EXPECT_EQ(parsed->oracle, repro.oracle);
        EXPECT_EQ(parsed->digest, repro.digest);
        EXPECT_EQ(parsed->note, repro.note);
    }
}

TEST(FuzzRepro, ExactUint64AndDoubleRoundTrip) {
    Repro repro;
    repro.scenario.node_count = 2;
    repro.scenario.edges = {{0, 1}};
    repro.scenario.run_seed = 0xffffffffffffffffULL;  // > 2^53: JSON numbers lose this
    repro.scenario.loss = 0.1;                        // not exactly representable
    repro.scenario.jitter = 1.0 / 3.0;
    repro.digest = 0x8000000000000001ULL;
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario.run_seed, repro.scenario.run_seed);
    EXPECT_EQ(parsed->scenario.loss, repro.scenario.loss);
    EXPECT_EQ(parsed->scenario.jitter, repro.scenario.jitter);
    EXPECT_EQ(parsed->digest, repro.digest);
}

TEST(FuzzRepro, RejectsMalformedDocuments) {
    const auto rejects = [](const std::string& text) {
        std::string error;
        const auto parsed = parse_repro(text, &error);
        EXPECT_FALSE(parsed.has_value()) << text;
        EXPECT_FALSE(error.empty());
    };
    rejects("");                      // empty
    rejects("{");                     // truncated
    rejects("[1,2,3]");               // wrong root type
    rejects(R"({"schema":"bogus"})");  // unknown schema

    // Structurally invalid scenarios must not parse either.
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    std::string good = to_repro_json(repro);

    std::string bad_source = good;
    const auto replace = [](std::string& text, const std::string& from,
                            const std::string& to) {
        const auto pos = text.find(from);
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, from.size(), to);
    };
    replace(bad_source, "\"source\": 0", "\"source\": 7");  // out of range
    rejects(bad_source);

    std::string bad_edge = good;
    replace(bad_edge, "[1,2]", "[1,9]");  // endpoint out of range
    rejects(bad_edge);

    std::string self_loop = good;
    replace(self_loop, "[1,2]", "[1,1]");
    rejects(self_loop);

    std::string bad_timing = good;
    replace(bad_timing, "\"timing\": \"FR\"", "\"timing\": \"Never\"");
    rejects(bad_timing);
}

TEST(FuzzScenario, ChurnGenerationIsDeterministicAndBounded) {
    GenerationLimits limits;
    limits.churn_intensity = 3.0;  // the CI churn profile
    bool any_faults = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario a = generate_scenario(41, i, limits);
        const Scenario b = generate_scenario(41, i, limits);
        EXPECT_EQ(a, b) << "index " << i;
        EXPECT_EQ(a, normalized(a)) << "index " << i;
        any_faults = any_faults || a.has_faults();
        // Mutual exclusion: stale-view runs never also carry churn.
        if (!a.lost_edges.empty()) {
            EXPECT_TRUE(a.crashes.empty() && a.asym.empty()) << "index " << i;
        }
        for (const CrashFault& c : a.crashes) {
            ASSERT_LT(c.node, a.node_count);
            if (c.recover_at >= 0.0) {
                EXPECT_GE(c.recover_at, c.at);
            }
        }
        for (const AsymLoss& l : a.asym) {
            ASSERT_LT(l.link.a, a.node_count);
            ASSERT_LT(l.link.b, a.node_count);
        }
    }
    EXPECT_TRUE(any_faults);  // intensity 3 must actually exercise churn
}

TEST(FuzzScenario, ChurnIntensityZeroDisablesFaults) {
    GenerationLimits limits;
    limits.churn_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario s = generate_scenario(41, i, limits);
        EXPECT_TRUE(s.crashes.empty()) << "index " << i;
        EXPECT_TRUE(s.asym.empty()) << "index " << i;
        EXPECT_FALSE(s.recovery) << "index " << i;
    }
}

TEST(FuzzScenario, NormalizationCleansChurn) {
    Scenario s;
    s.node_count = 4;
    s.edges = {{0, 1}, {1, 2}, {2, 3}};
    s.crashes = {{2, 3.0, 1.0},   // recover before crash: clamped up
                 {2, 5.0, -1.0},  // duplicate node: dropped (first kept)
                 {9, 1.0, -1.0}}; // dead id: dropped
    s.asym = {{{2, 1}, 0.5, 0.0},   // non-canonical: flipped
              {{0, 3}, 0.9, 0.9}};  // not a knowledge edge: dropped
    const Scenario n = normalized(s);
    ASSERT_EQ(n.crashes.size(), 1u);
    EXPECT_EQ(n.crashes[0].node, 2u);
    EXPECT_DOUBLE_EQ(n.crashes[0].at, 3.0);
    EXPECT_GE(n.crashes[0].recover_at, n.crashes[0].at);
    ASSERT_EQ(n.asym.size(), 1u);
    EXPECT_EQ(n.asym[0].link, (Edge{1, 2}));
}

TEST(FuzzScenario, LostEdgesSuppressChurn) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    s.crashes = {{1, 2.0, -1.0}};
    s.asym = {{{0, 1}, 0.5, 0.0}};
    s.recovery = true;
    const Scenario n = normalized(s);
    EXPECT_EQ(n.lost_edges, (std::vector<Edge>{{1, 2}}));
    EXPECT_TRUE(n.crashes.empty());
    EXPECT_TRUE(n.asym.empty());
    EXPECT_FALSE(n.recovery);
}

TEST(FuzzRepro, FaultFieldsRoundTrip) {
    Repro repro;
    repro.scenario.node_count = 4;
    repro.scenario.edges = {{0, 1}, {1, 2}, {2, 3}};
    repro.scenario.crashes = {{2, 1.5, 4.25}, {3, 0.125, -1.0}};
    repro.scenario.asym = {{{1, 2}, 1.0 / 3.0, 0.0}};
    repro.scenario.recovery = true;
    repro.oracle = "recovery";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);
}

TEST(FuzzRepro, FaultFieldsAreOptional) {
    // Pre-fault corpus files carry none of the new keys and must parse
    // unchanged — and a fault-free scenario must not emit them.
    Repro repro;
    repro.scenario.node_count = 2;
    repro.scenario.edges = {{0, 1}};
    const std::string json = to_repro_json(repro);
    EXPECT_EQ(json.find("crashes"), std::string::npos);
    EXPECT_EQ(json.find("asym"), std::string::npos);
    EXPECT_EQ(json.find("recovery"), std::string::npos);
    const auto parsed = parse_repro(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->scenario.crashes.empty());
    EXPECT_FALSE(parsed->scenario.recovery);
}

TEST(FuzzScenario, FingerprintSensitiveToChurn) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario crash = s;
    crash.crashes = {{1, 2.0, -1.0}};
    EXPECT_NE(scenario_fingerprint(crash), base);

    Scenario asym = s;
    asym.asym = {{{0, 1}, 0.25, 0.0}};
    EXPECT_NE(scenario_fingerprint(asym), base);

    Scenario rec = s;
    rec.recovery = true;
    EXPECT_NE(scenario_fingerprint(rec), base);
}

TEST(FuzzScenario, TrafficGenerationIsDeterministicAndBounded) {
    GenerationLimits limits;
    limits.traffic_intensity = 3.0;
    bool any_traffic = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario a = generate_scenario(43, i, limits);
        EXPECT_EQ(a, generate_scenario(43, i, limits)) << "index " << i;
        EXPECT_EQ(a, normalized(a)) << "index " << i;
        any_traffic = any_traffic || a.has_traffic();
        if (a.has_traffic()) {
            EXPECT_LE(a.traffic_sessions, 2048u);
            EXPECT_GT(a.traffic_rate, 0.0);
            // Mutual exclusion with the stale-knowledge path.
            EXPECT_TRUE(a.lost_edges.empty()) << "index " << i;
        } else {
            EXPECT_EQ(a.traffic_rate, 0.0);
            EXPECT_FALSE(a.traffic_bursty);
        }
    }
    EXPECT_TRUE(any_traffic);  // intensity 3 must actually sample traffic
}

TEST(FuzzScenario, TrafficIntensityZeroDisablesTraffic) {
    GenerationLimits limits;
    limits.traffic_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario s = generate_scenario(43, i, limits);
        EXPECT_FALSE(s.has_traffic()) << "index " << i;
    }
}

TEST(FuzzScenario, TrafficDrawsDoNotPerturbChurnStream) {
    // The traffic axis samples strictly after every churn draw, so
    // disabling it must leave every other scenario field untouched.
    GenerationLimits with;
    GenerationLimits without;
    without.traffic_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        Scenario a = generate_scenario(47, i, with);
        const Scenario b = generate_scenario(47, i, without);
        a.traffic_sessions = 0;
        a.traffic_rate = 0.0;
        a.traffic_bursty = false;
        EXPECT_EQ(a, b) << "index " << i;
    }
}

TEST(FuzzScenario, LostEdgesSuppressTraffic) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    s.traffic_sessions = 20;
    s.traffic_rate = 2.0;
    s.traffic_bursty = true;
    const Scenario n = normalized(s);
    EXPECT_FALSE(n.has_traffic());
    EXPECT_EQ(n.traffic_rate, 0.0);
    EXPECT_FALSE(n.traffic_bursty);
}

TEST(FuzzRepro, TrafficFieldRoundTrips) {
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    repro.scenario.traffic_sessions = 48;
    repro.scenario.traffic_rate = 1.0 / 3.0;  // not exactly representable
    repro.scenario.traffic_bursty = true;
    repro.oracle = "traffic";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);

    // Traffic-free scenarios must not emit the key (corpus byte-stability).
    Repro plain;
    plain.scenario.node_count = 2;
    plain.scenario.edges = {{0, 1}};
    EXPECT_EQ(to_repro_json(plain).find("traffic"), std::string::npos);
}

TEST(FuzzScenario, FingerprintSensitiveToTraffic) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario traffic = s;
    traffic.traffic_sessions = 16;
    traffic.traffic_rate = 2.0;
    EXPECT_NE(scenario_fingerprint(traffic), base);

    Scenario bursty = traffic;
    bursty.traffic_bursty = true;
    EXPECT_NE(scenario_fingerprint(bursty), scenario_fingerprint(traffic));
}

TEST(FuzzScenario, ScaleDrawIsDeterministicAndIndependent) {
    // The scale-check flag is drawn from its own seeded stream, so it is a
    // pure function of the master seed: toggling it on or off must leave
    // every other scenario field byte-identical.
    GenerationLimits with;
    GenerationLimits without;
    without.scale_intensity = 0.0;
    bool any_scale = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        Scenario a = generate_scenario(51, i, with);
        const Scenario b = generate_scenario(51, i, without);
        EXPECT_EQ(a, generate_scenario(51, i, with)) << "index " << i;
        EXPECT_FALSE(b.scale_check) << "index " << i;
        any_scale = any_scale || a.scale_check;
        a.scale_check = false;
        EXPECT_EQ(a, b) << "index " << i;
    }
    EXPECT_TRUE(any_scale);  // default intensity must actually sample it
}

TEST(FuzzRepro, ScaleCheckRoundTrips) {
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    repro.scenario.scale_check = true;
    repro.oracle = "scale";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);

    // Scenarios without the flag must not emit the key, so every pre-scale
    // corpus file stays byte-stable.
    Repro plain;
    plain.scenario.node_count = 2;
    plain.scenario.edges = {{0, 1}};
    EXPECT_EQ(to_repro_json(plain).find("scale_check"), std::string::npos);
    const auto replain = parse_repro(to_repro_json(plain));
    ASSERT_TRUE(replain.has_value());
    EXPECT_FALSE(replain->scenario.scale_check);
}

TEST(FuzzScenario, FingerprintSensitiveToScaleCheck) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    Scenario scaled = s;
    scaled.scale_check = true;
    EXPECT_NE(scenario_fingerprint(scaled), scenario_fingerprint(s));
}

namespace {
/// Resets the physical-layer axis to its defaults (what generating with
/// medium_intensity = 0 must produce).
void clear_medium(Scenario& s) {
    s.medium_backend = MediumBackend::kIdeal;
    s.sinr_alpha = 3.0;
    s.sinr_beta = 0.0;
    s.sinr_noise = 0.0;
    s.interference_range = 0.0;
    s.vulnerability_window = 0.0;
    s.positions.clear();
}
}  // namespace

TEST(FuzzScenario, MediumGenerationIsDeterministicAndBounded) {
    GenerationLimits limits;
    limits.medium_intensity = 3.0;
    bool any_sinr = false;
    bool any_uniform = false;
    for (std::uint64_t i = 0; i < 80; ++i) {
        const Scenario a = generate_scenario(53, i, limits);
        EXPECT_EQ(a, generate_scenario(53, i, limits)) << "index " << i;
        EXPECT_EQ(a, normalized(a)) << "index " << i;
        if (!a.has_medium()) {
            EXPECT_TRUE(a.positions.empty()) << "index " << i;
            continue;
        }
        any_sinr = any_sinr || a.medium_backend == MediumBackend::kSinr;
        any_uniform =
            any_uniform || a.medium_backend == MediumBackend::kUniformPowerGraph;
        // Everything run_once needs to build a valid Medium (pd = 1.0).
        EXPECT_EQ(a.positions.size(), a.node_count) << "index " << i;
        EXPECT_GE(a.sinr_alpha, 1.0);
        EXPECT_GE(a.sinr_beta, 0.0);
        EXPECT_GE(a.sinr_noise, 0.0);
        EXPECT_GT(a.interference_range, 0.0);
        EXPECT_GE(a.vulnerability_window, 0.0);
        EXPECT_LT(a.vulnerability_window, 1.0);
        // Mutual exclusion with the stale-knowledge path.
        EXPECT_TRUE(a.lost_edges.empty()) << "index " << i;
    }
    EXPECT_TRUE(any_sinr);     // intensity 3 must exercise both backends
    EXPECT_TRUE(any_uniform);
}

TEST(FuzzScenario, MediumIntensityZeroDisablesMedium) {
    GenerationLimits limits;
    limits.medium_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario s = generate_scenario(53, i, limits);
        EXPECT_FALSE(s.has_medium()) << "index " << i;
        EXPECT_TRUE(s.positions.empty()) << "index " << i;
    }
}

TEST(FuzzScenario, MediumDrawsDoNotPerturbOtherAxes) {
    // Like the scale axis, the medium samples from its own seeded stream:
    // toggling it must leave every other scenario field byte-identical.
    GenerationLimits with;
    GenerationLimits without;
    without.medium_intensity = 0.0;
    bool any_medium = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        Scenario a = generate_scenario(53, i, with);
        const Scenario b = generate_scenario(53, i, without);
        any_medium = any_medium || a.has_medium();
        clear_medium(a);
        EXPECT_EQ(a, b) << "index " << i;
    }
    EXPECT_TRUE(any_medium);  // default intensity must actually sample it
}

TEST(FuzzScenario, LostEdgesSuppressMedium) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    s.medium_backend = MediumBackend::kSinr;
    s.interference_range = 50.0;
    s.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
    const Scenario n = normalized(s);
    EXPECT_FALSE(n.has_medium());
    EXPECT_TRUE(n.positions.empty());
}

TEST(FuzzScenario, NormalizationDropsInvalidMedium) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.medium_backend = MediumBackend::kSinr;
    s.interference_range = 50.0;
    s.positions = {{0.0, 0.0}, {1.0, 0.0}};  // one short
    const Scenario n = normalized(s);
    EXPECT_FALSE(n.has_medium());

    s.positions.push_back({2.0, 0.0});
    s.vulnerability_window = 1.0;  // == run_once's propagation delay: invalid
    EXPECT_FALSE(normalized(s).has_medium());

    s.vulnerability_window = 0.25;
    EXPECT_TRUE(normalized(s).has_medium());
}

TEST(FuzzScenario, NormalizationRemapsPositionsWithComponent) {
    Scenario s;
    s.node_count = 4;
    s.edges = {{0, 1}, {2, 3}};  // node 2,3 unreachable from source 0
    s.source = 0;
    s.medium_backend = MediumBackend::kSinr;
    s.interference_range = 50.0;
    s.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
    const Scenario n = normalized(s);
    ASSERT_EQ(n.node_count, 2u);
    ASSERT_TRUE(n.has_medium());
    ASSERT_EQ(n.positions.size(), 2u);
    EXPECT_EQ(n.positions[0], (Point2D{0.0, 0.0}));
    EXPECT_EQ(n.positions[1], (Point2D{1.0, 0.0}));
}

TEST(FuzzRepro, MediumFieldsRoundTrip) {
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    repro.scenario.medium_backend = MediumBackend::kUniformPowerGraph;
    repro.scenario.sinr_alpha = 2.5;
    repro.scenario.sinr_beta = 1.0 / 3.0;  // not exactly representable
    repro.scenario.sinr_noise = 1e-7;
    repro.scenario.interference_range = 42.0;
    repro.scenario.vulnerability_window = 0.125;
    repro.scenario.positions = {{0.5, 1.5}, {10.0, 1.0 / 7.0}, {99.25, 0.0}};
    repro.oracle = "medium";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);

    // Ideal-medium scenarios must not emit the keys (corpus byte-stability).
    Repro plain;
    plain.scenario.node_count = 2;
    plain.scenario.edges = {{0, 1}};
    const std::string json = to_repro_json(plain);
    EXPECT_EQ(json.find("medium"), std::string::npos);
    EXPECT_EQ(json.find("positions"), std::string::npos);
}

TEST(FuzzRepro, RejectsInconsistentMediumDocuments) {
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    repro.scenario.medium_backend = MediumBackend::kSinr;
    repro.scenario.interference_range = 42.0;
    repro.scenario.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
    const std::string good = to_repro_json(repro);
    ASSERT_TRUE(parse_repro(good).has_value());

    const auto rejects = [](std::string text) {
        std::string error;
        EXPECT_FALSE(parse_repro(text, &error).has_value()) << text;
        EXPECT_FALSE(error.empty());
    };

    // "medium" without "positions" and vice versa.
    const auto erase_line = [&](const std::string& key) {
        std::string text = good;
        const auto pos = text.find("\"" + key + "\"");
        EXPECT_NE(pos, std::string::npos);
        const auto start = text.rfind('\n', pos) + 1;
        const auto end = text.find('\n', pos) + 1;
        text.erase(start, end - start);
        return text;
    };
    rejects(erase_line("medium"));
    rejects(erase_line("positions"));

    // The medium is exclusive with the stale-knowledge path.
    Repro stale = repro;
    stale.scenario.lost_edges = {{1, 2}};
    rejects(to_repro_json(stale));

    // Out-of-range parameters must not parse either.
    Repro bad = repro;
    bad.scenario.vulnerability_window = 1.0;
    rejects(to_repro_json(bad));
    bad = repro;
    bad.scenario.positions.pop_back();
    rejects(to_repro_json(bad));
}

TEST(FuzzScenario, FingerprintSensitiveToMedium) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario medium = s;
    medium.medium_backend = MediumBackend::kSinr;
    medium.interference_range = 42.0;
    medium.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
    EXPECT_NE(scenario_fingerprint(medium), base);

    Scenario beta = medium;
    beta.sinr_beta = 0.5;
    EXPECT_NE(scenario_fingerprint(beta), scenario_fingerprint(medium));

    Scenario moved = medium;
    moved.positions[1] = {1.0, 0.5};
    EXPECT_NE(scenario_fingerprint(moved), scenario_fingerprint(medium));
}

TEST(FuzzScenario, FingerprintSensitiveToFields) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario seed = s;
    seed.run_seed = 2;
    EXPECT_NE(scenario_fingerprint(seed), base);

    Scenario edge = s;
    edge.edges.push_back({0, 2});
    EXPECT_NE(scenario_fingerprint(edge), base);

    Scenario algo = s;
    algo.config.algorithm = "flooding";
    EXPECT_NE(scenario_fingerprint(algo), base);
}

}  // namespace
}  // namespace adhoc::fuzz
