/// \file fuzz_scenario_test.cpp
/// \brief Scenario generation, normalization and .repro round-trip tests.

#include <gtest/gtest.h>

#include <set>

#include "fuzz/repro.hpp"
#include "fuzz/scenario.hpp"
#include "graph/traversal.hpp"

namespace adhoc::fuzz {
namespace {

TEST(FuzzScenario, GenerationIsDeterministic) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        const Scenario a = generate_scenario(123, i);
        const Scenario b = generate_scenario(123, i);
        EXPECT_EQ(a, b) << "index " << i;
    }
}

TEST(FuzzScenario, DistinctIndicesDiffer) {
    std::set<std::uint64_t> fingerprints;
    for (std::uint64_t i = 0; i < 100; ++i) {
        fingerprints.insert(scenario_fingerprint(generate_scenario(7, i)));
    }
    // Scenario space is huge; near-perfect dedup expected.
    EXPECT_GT(fingerprints.size(), 95u);
}

TEST(FuzzScenario, GeneratedScenariosAreNormalized) {
    for (std::uint64_t i = 0; i < 100; ++i) {
        const Scenario s = generate_scenario(99, i);
        EXPECT_EQ(s, normalized(s)) << "index " << i;
        ASSERT_GE(s.node_count, 1u);
        ASSERT_LT(s.source, s.node_count);
        EXPECT_TRUE(is_connected(s.knowledge_graph())) << "index " << i;
    }
}

TEST(FuzzScenario, NormalizationRestrictsToSourceComponent) {
    Scenario s;
    s.node_count = 6;
    // Component {0,1,2} + separate component {3,4}; node 5 isolated.
    s.edges = {{0, 1}, {1, 2}, {3, 4}};
    s.source = 1;
    const Scenario n = normalized(s);
    EXPECT_EQ(n.node_count, 3u);
    EXPECT_EQ(n.source, 1u);  // order-preserving remap keeps relative ids
    EXPECT_EQ(n.edges, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

TEST(FuzzScenario, NormalizationDropsStaleLostEdges) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}, {0, 2}};  // (0,2) is not a knowledge edge
    const Scenario n = normalized(s);
    EXPECT_EQ(n.lost_edges, (std::vector<Edge>{{1, 2}}));
}

TEST(FuzzScenario, ActualGraphRemovesLostEdges) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    EXPECT_TRUE(s.knowledge_graph().has_edge(1, 2));
    EXPECT_FALSE(s.actual_graph().has_edge(1, 2));
    EXPECT_TRUE(s.actual_graph().has_edge(0, 1));
}

TEST(FuzzRepro, RoundTripPreservesEverything) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        Repro repro;
        repro.scenario = generate_scenario(555, i);
        repro.oracle = (i % 2 == 0) ? "pass" : "delivery";
        repro.digest = 0xdeadbeefcafe0000ULL + i;
        repro.note = "round-trip case " + std::to_string(i);
        std::string error;
        const auto parsed = parse_repro(to_repro_json(repro), &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_EQ(parsed->scenario, repro.scenario) << "index " << i;
        EXPECT_EQ(parsed->oracle, repro.oracle);
        EXPECT_EQ(parsed->digest, repro.digest);
        EXPECT_EQ(parsed->note, repro.note);
    }
}

TEST(FuzzRepro, ExactUint64AndDoubleRoundTrip) {
    Repro repro;
    repro.scenario.node_count = 2;
    repro.scenario.edges = {{0, 1}};
    repro.scenario.run_seed = 0xffffffffffffffffULL;  // > 2^53: JSON numbers lose this
    repro.scenario.loss = 0.1;                        // not exactly representable
    repro.scenario.jitter = 1.0 / 3.0;
    repro.digest = 0x8000000000000001ULL;
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario.run_seed, repro.scenario.run_seed);
    EXPECT_EQ(parsed->scenario.loss, repro.scenario.loss);
    EXPECT_EQ(parsed->scenario.jitter, repro.scenario.jitter);
    EXPECT_EQ(parsed->digest, repro.digest);
}

TEST(FuzzRepro, RejectsMalformedDocuments) {
    const auto rejects = [](const std::string& text) {
        std::string error;
        const auto parsed = parse_repro(text, &error);
        EXPECT_FALSE(parsed.has_value()) << text;
        EXPECT_FALSE(error.empty());
    };
    rejects("");                      // empty
    rejects("{");                     // truncated
    rejects("[1,2,3]");               // wrong root type
    rejects(R"({"schema":"bogus"})");  // unknown schema

    // Structurally invalid scenarios must not parse either.
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    std::string good = to_repro_json(repro);

    std::string bad_source = good;
    const auto replace = [](std::string& text, const std::string& from,
                            const std::string& to) {
        const auto pos = text.find(from);
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, from.size(), to);
    };
    replace(bad_source, "\"source\": 0", "\"source\": 7");  // out of range
    rejects(bad_source);

    std::string bad_edge = good;
    replace(bad_edge, "[1,2]", "[1,9]");  // endpoint out of range
    rejects(bad_edge);

    std::string self_loop = good;
    replace(self_loop, "[1,2]", "[1,1]");
    rejects(self_loop);

    std::string bad_timing = good;
    replace(bad_timing, "\"timing\": \"FR\"", "\"timing\": \"Never\"");
    rejects(bad_timing);
}

TEST(FuzzScenario, ChurnGenerationIsDeterministicAndBounded) {
    GenerationLimits limits;
    limits.churn_intensity = 3.0;  // the CI churn profile
    bool any_faults = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario a = generate_scenario(41, i, limits);
        const Scenario b = generate_scenario(41, i, limits);
        EXPECT_EQ(a, b) << "index " << i;
        EXPECT_EQ(a, normalized(a)) << "index " << i;
        any_faults = any_faults || a.has_faults();
        // Mutual exclusion: stale-view runs never also carry churn.
        if (!a.lost_edges.empty()) {
            EXPECT_TRUE(a.crashes.empty() && a.asym.empty()) << "index " << i;
        }
        for (const CrashFault& c : a.crashes) {
            ASSERT_LT(c.node, a.node_count);
            if (c.recover_at >= 0.0) {
                EXPECT_GE(c.recover_at, c.at);
            }
        }
        for (const AsymLoss& l : a.asym) {
            ASSERT_LT(l.link.a, a.node_count);
            ASSERT_LT(l.link.b, a.node_count);
        }
    }
    EXPECT_TRUE(any_faults);  // intensity 3 must actually exercise churn
}

TEST(FuzzScenario, ChurnIntensityZeroDisablesFaults) {
    GenerationLimits limits;
    limits.churn_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario s = generate_scenario(41, i, limits);
        EXPECT_TRUE(s.crashes.empty()) << "index " << i;
        EXPECT_TRUE(s.asym.empty()) << "index " << i;
        EXPECT_FALSE(s.recovery) << "index " << i;
    }
}

TEST(FuzzScenario, NormalizationCleansChurn) {
    Scenario s;
    s.node_count = 4;
    s.edges = {{0, 1}, {1, 2}, {2, 3}};
    s.crashes = {{2, 3.0, 1.0},   // recover before crash: clamped up
                 {2, 5.0, -1.0},  // duplicate node: dropped (first kept)
                 {9, 1.0, -1.0}}; // dead id: dropped
    s.asym = {{{2, 1}, 0.5, 0.0},   // non-canonical: flipped
              {{0, 3}, 0.9, 0.9}};  // not a knowledge edge: dropped
    const Scenario n = normalized(s);
    ASSERT_EQ(n.crashes.size(), 1u);
    EXPECT_EQ(n.crashes[0].node, 2u);
    EXPECT_DOUBLE_EQ(n.crashes[0].at, 3.0);
    EXPECT_GE(n.crashes[0].recover_at, n.crashes[0].at);
    ASSERT_EQ(n.asym.size(), 1u);
    EXPECT_EQ(n.asym[0].link, (Edge{1, 2}));
}

TEST(FuzzScenario, LostEdgesSuppressChurn) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    s.crashes = {{1, 2.0, -1.0}};
    s.asym = {{{0, 1}, 0.5, 0.0}};
    s.recovery = true;
    const Scenario n = normalized(s);
    EXPECT_EQ(n.lost_edges, (std::vector<Edge>{{1, 2}}));
    EXPECT_TRUE(n.crashes.empty());
    EXPECT_TRUE(n.asym.empty());
    EXPECT_FALSE(n.recovery);
}

TEST(FuzzRepro, FaultFieldsRoundTrip) {
    Repro repro;
    repro.scenario.node_count = 4;
    repro.scenario.edges = {{0, 1}, {1, 2}, {2, 3}};
    repro.scenario.crashes = {{2, 1.5, 4.25}, {3, 0.125, -1.0}};
    repro.scenario.asym = {{{1, 2}, 1.0 / 3.0, 0.0}};
    repro.scenario.recovery = true;
    repro.oracle = "recovery";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);
}

TEST(FuzzRepro, FaultFieldsAreOptional) {
    // Pre-fault corpus files carry none of the new keys and must parse
    // unchanged — and a fault-free scenario must not emit them.
    Repro repro;
    repro.scenario.node_count = 2;
    repro.scenario.edges = {{0, 1}};
    const std::string json = to_repro_json(repro);
    EXPECT_EQ(json.find("crashes"), std::string::npos);
    EXPECT_EQ(json.find("asym"), std::string::npos);
    EXPECT_EQ(json.find("recovery"), std::string::npos);
    const auto parsed = parse_repro(json);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->scenario.crashes.empty());
    EXPECT_FALSE(parsed->scenario.recovery);
}

TEST(FuzzScenario, FingerprintSensitiveToChurn) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario crash = s;
    crash.crashes = {{1, 2.0, -1.0}};
    EXPECT_NE(scenario_fingerprint(crash), base);

    Scenario asym = s;
    asym.asym = {{{0, 1}, 0.25, 0.0}};
    EXPECT_NE(scenario_fingerprint(asym), base);

    Scenario rec = s;
    rec.recovery = true;
    EXPECT_NE(scenario_fingerprint(rec), base);
}

TEST(FuzzScenario, TrafficGenerationIsDeterministicAndBounded) {
    GenerationLimits limits;
    limits.traffic_intensity = 3.0;
    bool any_traffic = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario a = generate_scenario(43, i, limits);
        EXPECT_EQ(a, generate_scenario(43, i, limits)) << "index " << i;
        EXPECT_EQ(a, normalized(a)) << "index " << i;
        any_traffic = any_traffic || a.has_traffic();
        if (a.has_traffic()) {
            EXPECT_LE(a.traffic_sessions, 2048u);
            EXPECT_GT(a.traffic_rate, 0.0);
            // Mutual exclusion with the stale-knowledge path.
            EXPECT_TRUE(a.lost_edges.empty()) << "index " << i;
        } else {
            EXPECT_EQ(a.traffic_rate, 0.0);
            EXPECT_FALSE(a.traffic_bursty);
        }
    }
    EXPECT_TRUE(any_traffic);  // intensity 3 must actually sample traffic
}

TEST(FuzzScenario, TrafficIntensityZeroDisablesTraffic) {
    GenerationLimits limits;
    limits.traffic_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        const Scenario s = generate_scenario(43, i, limits);
        EXPECT_FALSE(s.has_traffic()) << "index " << i;
    }
}

TEST(FuzzScenario, TrafficDrawsDoNotPerturbChurnStream) {
    // The traffic axis samples strictly after every churn draw, so
    // disabling it must leave every other scenario field untouched.
    GenerationLimits with;
    GenerationLimits without;
    without.traffic_intensity = 0.0;
    for (std::uint64_t i = 0; i < 60; ++i) {
        Scenario a = generate_scenario(47, i, with);
        const Scenario b = generate_scenario(47, i, without);
        a.traffic_sessions = 0;
        a.traffic_rate = 0.0;
        a.traffic_bursty = false;
        EXPECT_EQ(a, b) << "index " << i;
    }
}

TEST(FuzzScenario, LostEdgesSuppressTraffic) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    s.traffic_sessions = 20;
    s.traffic_rate = 2.0;
    s.traffic_bursty = true;
    const Scenario n = normalized(s);
    EXPECT_FALSE(n.has_traffic());
    EXPECT_EQ(n.traffic_rate, 0.0);
    EXPECT_FALSE(n.traffic_bursty);
}

TEST(FuzzRepro, TrafficFieldRoundTrips) {
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    repro.scenario.traffic_sessions = 48;
    repro.scenario.traffic_rate = 1.0 / 3.0;  // not exactly representable
    repro.scenario.traffic_bursty = true;
    repro.oracle = "traffic";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);

    // Traffic-free scenarios must not emit the key (corpus byte-stability).
    Repro plain;
    plain.scenario.node_count = 2;
    plain.scenario.edges = {{0, 1}};
    EXPECT_EQ(to_repro_json(plain).find("traffic"), std::string::npos);
}

TEST(FuzzScenario, FingerprintSensitiveToTraffic) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario traffic = s;
    traffic.traffic_sessions = 16;
    traffic.traffic_rate = 2.0;
    EXPECT_NE(scenario_fingerprint(traffic), base);

    Scenario bursty = traffic;
    bursty.traffic_bursty = true;
    EXPECT_NE(scenario_fingerprint(bursty), scenario_fingerprint(traffic));
}

TEST(FuzzScenario, ScaleDrawIsDeterministicAndIndependent) {
    // The scale-check flag is drawn from its own seeded stream, so it is a
    // pure function of the master seed: toggling it on or off must leave
    // every other scenario field byte-identical.
    GenerationLimits with;
    GenerationLimits without;
    without.scale_intensity = 0.0;
    bool any_scale = false;
    for (std::uint64_t i = 0; i < 60; ++i) {
        Scenario a = generate_scenario(51, i, with);
        const Scenario b = generate_scenario(51, i, without);
        EXPECT_EQ(a, generate_scenario(51, i, with)) << "index " << i;
        EXPECT_FALSE(b.scale_check) << "index " << i;
        any_scale = any_scale || a.scale_check;
        a.scale_check = false;
        EXPECT_EQ(a, b) << "index " << i;
    }
    EXPECT_TRUE(any_scale);  // default intensity must actually sample it
}

TEST(FuzzRepro, ScaleCheckRoundTrips) {
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    repro.scenario.scale_check = true;
    repro.oracle = "scale";
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario, repro.scenario);

    // Scenarios without the flag must not emit the key, so every pre-scale
    // corpus file stays byte-stable.
    Repro plain;
    plain.scenario.node_count = 2;
    plain.scenario.edges = {{0, 1}};
    EXPECT_EQ(to_repro_json(plain).find("scale_check"), std::string::npos);
    const auto replain = parse_repro(to_repro_json(plain));
    ASSERT_TRUE(replain.has_value());
    EXPECT_FALSE(replain->scenario.scale_check);
}

TEST(FuzzScenario, FingerprintSensitiveToScaleCheck) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    Scenario scaled = s;
    scaled.scale_check = true;
    EXPECT_NE(scenario_fingerprint(scaled), scenario_fingerprint(s));
}

TEST(FuzzScenario, FingerprintSensitiveToFields) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario seed = s;
    seed.run_seed = 2;
    EXPECT_NE(scenario_fingerprint(seed), base);

    Scenario edge = s;
    edge.edges.push_back({0, 2});
    EXPECT_NE(scenario_fingerprint(edge), base);

    Scenario algo = s;
    algo.config.algorithm = "flooding";
    EXPECT_NE(scenario_fingerprint(algo), base);
}

}  // namespace
}  // namespace adhoc::fuzz
