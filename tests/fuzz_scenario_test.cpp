/// \file fuzz_scenario_test.cpp
/// \brief Scenario generation, normalization and .repro round-trip tests.

#include <gtest/gtest.h>

#include <set>

#include "fuzz/repro.hpp"
#include "fuzz/scenario.hpp"
#include "graph/traversal.hpp"

namespace adhoc::fuzz {
namespace {

TEST(FuzzScenario, GenerationIsDeterministic) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        const Scenario a = generate_scenario(123, i);
        const Scenario b = generate_scenario(123, i);
        EXPECT_EQ(a, b) << "index " << i;
    }
}

TEST(FuzzScenario, DistinctIndicesDiffer) {
    std::set<std::uint64_t> fingerprints;
    for (std::uint64_t i = 0; i < 100; ++i) {
        fingerprints.insert(scenario_fingerprint(generate_scenario(7, i)));
    }
    // Scenario space is huge; near-perfect dedup expected.
    EXPECT_GT(fingerprints.size(), 95u);
}

TEST(FuzzScenario, GeneratedScenariosAreNormalized) {
    for (std::uint64_t i = 0; i < 100; ++i) {
        const Scenario s = generate_scenario(99, i);
        EXPECT_EQ(s, normalized(s)) << "index " << i;
        ASSERT_GE(s.node_count, 1u);
        ASSERT_LT(s.source, s.node_count);
        EXPECT_TRUE(is_connected(s.knowledge_graph())) << "index " << i;
    }
}

TEST(FuzzScenario, NormalizationRestrictsToSourceComponent) {
    Scenario s;
    s.node_count = 6;
    // Component {0,1,2} + separate component {3,4}; node 5 isolated.
    s.edges = {{0, 1}, {1, 2}, {3, 4}};
    s.source = 1;
    const Scenario n = normalized(s);
    EXPECT_EQ(n.node_count, 3u);
    EXPECT_EQ(n.source, 1u);  // order-preserving remap keeps relative ids
    EXPECT_EQ(n.edges, (std::vector<Edge>{{0, 1}, {1, 2}}));
}

TEST(FuzzScenario, NormalizationDropsStaleLostEdges) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}, {0, 2}};  // (0,2) is not a knowledge edge
    const Scenario n = normalized(s);
    EXPECT_EQ(n.lost_edges, (std::vector<Edge>{{1, 2}}));
}

TEST(FuzzScenario, ActualGraphRemovesLostEdges) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    s.lost_edges = {{1, 2}};
    EXPECT_TRUE(s.knowledge_graph().has_edge(1, 2));
    EXPECT_FALSE(s.actual_graph().has_edge(1, 2));
    EXPECT_TRUE(s.actual_graph().has_edge(0, 1));
}

TEST(FuzzRepro, RoundTripPreservesEverything) {
    for (std::uint64_t i = 0; i < 50; ++i) {
        Repro repro;
        repro.scenario = generate_scenario(555, i);
        repro.oracle = (i % 2 == 0) ? "pass" : "delivery";
        repro.digest = 0xdeadbeefcafe0000ULL + i;
        repro.note = "round-trip case " + std::to_string(i);
        std::string error;
        const auto parsed = parse_repro(to_repro_json(repro), &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_EQ(parsed->scenario, repro.scenario) << "index " << i;
        EXPECT_EQ(parsed->oracle, repro.oracle);
        EXPECT_EQ(parsed->digest, repro.digest);
        EXPECT_EQ(parsed->note, repro.note);
    }
}

TEST(FuzzRepro, ExactUint64AndDoubleRoundTrip) {
    Repro repro;
    repro.scenario.node_count = 2;
    repro.scenario.edges = {{0, 1}};
    repro.scenario.run_seed = 0xffffffffffffffffULL;  // > 2^53: JSON numbers lose this
    repro.scenario.loss = 0.1;                        // not exactly representable
    repro.scenario.jitter = 1.0 / 3.0;
    repro.digest = 0x8000000000000001ULL;
    const auto parsed = parse_repro(to_repro_json(repro));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->scenario.run_seed, repro.scenario.run_seed);
    EXPECT_EQ(parsed->scenario.loss, repro.scenario.loss);
    EXPECT_EQ(parsed->scenario.jitter, repro.scenario.jitter);
    EXPECT_EQ(parsed->digest, repro.digest);
}

TEST(FuzzRepro, RejectsMalformedDocuments) {
    const auto rejects = [](const std::string& text) {
        std::string error;
        const auto parsed = parse_repro(text, &error);
        EXPECT_FALSE(parsed.has_value()) << text;
        EXPECT_FALSE(error.empty());
    };
    rejects("");                      // empty
    rejects("{");                     // truncated
    rejects("[1,2,3]");               // wrong root type
    rejects(R"({"schema":"bogus"})");  // unknown schema

    // Structurally invalid scenarios must not parse either.
    Repro repro;
    repro.scenario.node_count = 3;
    repro.scenario.edges = {{0, 1}, {1, 2}};
    std::string good = to_repro_json(repro);

    std::string bad_source = good;
    const auto replace = [](std::string& text, const std::string& from,
                            const std::string& to) {
        const auto pos = text.find(from);
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, from.size(), to);
    };
    replace(bad_source, "\"source\": 0", "\"source\": 7");  // out of range
    rejects(bad_source);

    std::string bad_edge = good;
    replace(bad_edge, "[1,2]", "[1,9]");  // endpoint out of range
    rejects(bad_edge);

    std::string self_loop = good;
    replace(self_loop, "[1,2]", "[1,1]");
    rejects(self_loop);

    std::string bad_timing = good;
    replace(bad_timing, "\"timing\": \"FR\"", "\"timing\": \"Never\"");
    rejects(bad_timing);
}

TEST(FuzzScenario, FingerprintSensitiveToFields) {
    Scenario s;
    s.node_count = 3;
    s.edges = {{0, 1}, {1, 2}};
    const std::uint64_t base = scenario_fingerprint(s);

    Scenario seed = s;
    seed.run_seed = 2;
    EXPECT_NE(scenario_fingerprint(seed), base);

    Scenario edge = s;
    edge.edges.push_back({0, 2});
    EXPECT_NE(scenario_fingerprint(edge), base);

    Scenario algo = s;
    algo.config.algorithm = "flooding";
    EXPECT_NE(scenario_fingerprint(algo), base);
}

}  // namespace
}  // namespace adhoc::fuzz
