/// \file fuzz_shrink_test.cpp
/// \brief Delta-debugging shrinker behavior on synthetic and real failures.

#include <gtest/gtest.h>

#include "fuzz/oracles.hpp"
#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "graph/graph.hpp"
#include "graph/traversal.hpp"

namespace adhoc::fuzz {
namespace {

Scenario big_scenario() {
    const Graph g = grid_graph(5, 6);
    Scenario s;
    s.family = "test";
    s.node_count = g.node_count();
    s.edges = g.edges();
    s.source = 12;
    s.loss = 0.3;
    s.jitter = 1.5;
    s.config.history = 4;
    return normalized(s);
}

TEST(FuzzShrink, SyntheticPredicateShrinksToCore) {
    // "Fails whenever nodes with original ids 3 and 4 are adjacent" — after
    // remapping we can't track ids, so use a structural proxy: fails while
    // the graph still has at least one edge.
    const Scenario start = big_scenario();
    ShrinkStats stats;
    const Scenario small = shrink_scenario(
        start, [](const Scenario& s) { return s.node_count >= 2; },
        ShrinkOptions{}, &stats);
    EXPECT_EQ(small.node_count, 2u);
    EXPECT_EQ(small.edges.size(), 1u);
    EXPECT_EQ(small.loss, 0.0);
    EXPECT_EQ(small.jitter, 0.0);
    EXPECT_EQ(small.source, 0u);
    EXPECT_GT(stats.evals, 0u);
    EXPECT_FALSE(stats.budget_exhausted);
}

TEST(FuzzShrink, ResultStillFailsAndIsNormalized) {
    const Scenario start = big_scenario();
    const auto predicate = [](const Scenario& s) { return s.node_count >= 5; };
    const Scenario small = shrink_scenario(start, predicate);
    EXPECT_TRUE(predicate(small));
    EXPECT_EQ(small, normalized(small));
    EXPECT_TRUE(is_connected(small.knowledge_graph()));
    EXPECT_EQ(small.node_count, 5u);
}

TEST(FuzzShrink, RespectsEvalBudget) {
    const Scenario start = big_scenario();
    ShrinkStats stats;
    ShrinkOptions options;
    options.max_evals = 10;
    const Scenario small = shrink_scenario(
        start, [](const Scenario& s) { return s.node_count >= 2; }, options, &stats);
    EXPECT_LE(stats.evals, 10u);
    EXPECT_TRUE(stats.budget_exhausted);
    EXPECT_GE(small.node_count, 2u);  // never returns a passing scenario
}

TEST(FuzzShrink, RealOracleFailureShrinksSmall) {
    // The disconnected-cover mutant fails delivery on any graph where the
    // pruning decision severs the broadcast; shrink one real finding.
    const AlgorithmPool pool(/*with_mutants=*/true);
    Scenario failing;
    bool found = false;
    for (std::uint64_t i = 0; i < 200 && !found; ++i) {
        GenerationLimits limits;
        limits.max_nodes = 12;
        limits.faults = false;
        limits.registry_algorithms = false;
        Scenario s = generate_scenario(31, i, limits);
        s.config.algorithm = "mutant:disconnected-cover";
        if (!check_scenario(s, pool).ok) {
            failing = s;
            found = true;
        }
    }
    ASSERT_TRUE(found) << "mutant never failed in 200 scenarios";

    const std::string oracle = check_scenario(failing, pool).oracle;
    const auto still_fails = [&](const Scenario& s) {
        const CheckReport r = check_scenario(s, pool);
        return !r.ok && r.oracle == oracle;
    };
    ShrinkStats stats;
    const Scenario small = shrink_scenario(failing, still_fails, ShrinkOptions{}, &stats);
    EXPECT_TRUE(still_fails(small));
    EXPECT_LE(small.node_count, 8u) << "repro did not minimize";
    EXPECT_LE(small.node_count, failing.node_count);
}

}  // namespace
}  // namespace adhoc::fuzz
