/// \file fuzz_smoke_test.cpp
/// \brief Bounded differential-fuzz smoke: a fixed seed window over every
/// algorithm and fault model must be finding-free, and the campaign must
/// be bit-identical at any jobs value.

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hpp"
#include "fuzz/scenario.hpp"

namespace adhoc::fuzz {
namespace {

TEST(FuzzSmoke, FixedWindowIsClean) {
    FuzzOptions options;
    options.base_seed = 20260805;  // pinned window: regressions repro exactly
    options.iterations = 400;
    const FuzzReport report = run_fuzz(options);
    EXPECT_EQ(report.iterations_run, options.iterations);
    for (const Finding& finding : report.findings) {
        ADD_FAILURE() << "oracle " << finding.oracle << " fired at iteration "
                      << finding.iteration << " (" << finding.shrunk.node_count
                      << "-node repro): " << finding.detail;
    }
}

TEST(FuzzSmoke, ReportIsJobsInvariant) {
    // Run a window that contains real findings (a pinned mutant) so the
    // invariance check covers the interesting path, not just clean runs.
    FuzzOptions options;
    options.base_seed = 17;
    options.iterations = 60;
    options.limits.max_nodes = 12;
    options.limits.faults = false;
    options.algorithm_override = "mutant:skip-priority";
    options.shrink_evals = 500;

    options.jobs = 1;
    const FuzzReport serial = run_fuzz(options);
    options.jobs = 2;
    const FuzzReport threaded = run_fuzz(options);

    EXPECT_EQ(serial.iterations_run, threaded.iterations_run);
    EXPECT_EQ(serial.checks_passed, threaded.checks_passed);
    ASSERT_EQ(serial.findings.size(), threaded.findings.size());
    EXPECT_FALSE(serial.findings.empty()) << "window no longer exercises findings";
    for (std::size_t i = 0; i < serial.findings.size(); ++i) {
        EXPECT_EQ(serial.findings[i].iteration, threaded.findings[i].iteration);
        EXPECT_EQ(serial.findings[i].oracle, threaded.findings[i].oracle);
        EXPECT_EQ(serial.findings[i].original, threaded.findings[i].original);
        EXPECT_EQ(serial.findings[i].shrunk, threaded.findings[i].shrunk);
    }
}

TEST(FuzzSmoke, TimeCapStopsEarly) {
    FuzzOptions options;
    options.base_seed = 3;
    options.iterations = 1'000'000;  // far more than the cap allows
    options.seconds = 0.2;
    const FuzzReport report = run_fuzz(options);
    EXPECT_LT(report.iterations_run, options.iterations);
    EXPECT_TRUE(report.clean());
}

}  // namespace
}  // namespace adhoc::fuzz
