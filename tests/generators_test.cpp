// Unit + robustness tests for the non-uniform topology generators, and the
// cross-algorithm robustness sweep over them.

#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "graph/metrics.hpp"
#include "graph/traversal.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(SegmentDisk, BasicGeometry) {
    // Horizontal segment passing through a disk at the origin.
    EXPECT_TRUE(segment_intersects_disk({-10, 0}, {10, 0}, {0, 0}, 1.0));
    // Segment passing well above.
    EXPECT_FALSE(segment_intersects_disk({-10, 5}, {10, 5}, {0, 0}, 1.0));
    // Segment ending before the disk.
    EXPECT_FALSE(segment_intersects_disk({-10, 0}, {-5, 0}, {0, 0}, 1.0));
    // Endpoint inside the disk.
    EXPECT_TRUE(segment_intersects_disk({0.5, 0}, {10, 0}, {0, 0}, 1.0));
    // Degenerate zero-length segment.
    EXPECT_TRUE(segment_intersects_disk({0, 0}, {0, 0}, {0, 0}, 1.0));
    EXPECT_FALSE(segment_intersects_disk({5, 5}, {5, 5}, {0, 0}, 1.0));
}

TEST(Obstacle, NodesOutsideAndLinksUnblocked) {
    Rng rng(401);
    ObstacleParams params;
    params.node_count = 60;
    const auto net = generate_obstacle_network(params, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_TRUE(is_connected(net->graph));
    for (const Point2D& p : net->positions) {
        EXPECT_GT(distance(p, params.obstacle_center), params.obstacle_radius);
    }
    for (const Edge& e : net->graph.edges()) {
        EXPECT_LE(distance(net->positions[e.a], net->positions[e.b]), params.range + 1e-9);
        EXPECT_FALSE(segment_intersects_disk(net->positions[e.a], net->positions[e.b],
                                             params.obstacle_center,
                                             params.obstacle_radius));
    }
}

TEST(Obstacle, ObstacleRemovesCrossLinks) {
    // Same placement seed with and without blocking: the obstacle variant
    // must have no link crossing the disk (checked above) and, given the
    // central obstacle, a larger diameter on average.
    Rng rng(409);
    ObstacleParams params;
    params.node_count = 70;
    params.obstacle_radius = 25.0;
    const auto net = generate_obstacle_network(params, rng);
    ASSERT_TRUE(net.has_value());
    // The detour around a radius-25 disk in a 100x100 area forces paths
    // longer than the straight-line hop count.
    EXPECT_GE(diameter(net->graph), 4u);
}

TEST(Hotspot, ClusteredPlacementIsDenser) {
    Rng rng(419);
    HotspotParams params;
    params.node_count = 80;
    const auto hot = generate_hotspot_network(params, rng);
    ASSERT_TRUE(hot.has_value());
    EXPECT_TRUE(is_connected(hot->graph));

    // Compare with a uniform network at the same range: hotspot clustering
    // concentrates nodes, raising the maximum degree.
    Rng rng2(419);
    std::vector<Point2D> uniform(params.node_count);
    for (auto& p : uniform) {
        p = {rng2.uniform(0.0, params.area_side), rng2.uniform(0.0, params.area_side)};
    }
    const Graph ug = unit_disk_graph(uniform, params.range);
    EXPECT_GT(max_degree(hot->graph), max_degree(ug));
}

TEST(Hotspot, DeterministicUnderSeed) {
    HotspotParams params;
    params.node_count = 40;
    Rng a(7), b(7);
    const auto x = generate_hotspot_network(params, a);
    const auto y = generate_hotspot_network(params, b);
    ASSERT_TRUE(x && y);
    EXPECT_EQ(x->graph, y->graph);
}

TEST(Generators, AllAlgorithmsCoverNonUniformTopologies) {
    // The Theorem 1/2 guarantees are topology-independent: every
    // deterministic algorithm must cover obstacle and hotspot networks.
    Rng rng(431);
    ObstacleParams obstacle;
    obstacle.node_count = 50;
    HotspotParams hotspot;
    hotspot.node_count = 50;
    const auto onet = generate_obstacle_network(obstacle, rng);
    const auto hnet = generate_hotspot_network(hotspot, rng);
    ASSERT_TRUE(onet && hnet);

    const auto registry = make_registry();
    for (const auto& e : registry) {
        if (e.key.rfind("gossip", 0) == 0) continue;
        for (const UnitDiskNetwork* net : {&*onet, &*hnet}) {
            Rng run(5);
            const auto result = e.algorithm->broadcast(net->graph, 0, run);
            EXPECT_TRUE(result.full_delivery)
                << e.key << " on " << (net == &*onet ? "obstacle" : "hotspot");
            EXPECT_TRUE(check_broadcast(net->graph, 0, result).ok()) << e.key;
        }
    }
}

}  // namespace
}  // namespace adhoc
