// Unit tests for Algorithm 1 (the generic distributed broadcast protocol)
// across its four implementation axes.

#include "sim/generic_protocol.hpp"

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "algorithms/hybrid.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

BroadcastResult run_config(const Graph& g, NodeId source, GenericConfig cfg,
                           std::uint64_t seed = 1) {
    GenericBroadcast algo(cfg);
    Rng rng(seed);
    return algo.broadcast(g, source, rng);
}

TEST(GenericStatic, ForwardSetIsCdsOnGrid) {
    const Graph g = grid_graph(4, 5);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const auto fwd = generic_static_forward_set(g, 2, keys, {});
    EXPECT_TRUE(is_cds(g, fwd)) << "static forward set must be a CDS (Theorem 2)";
}

TEST(GenericStatic, CompleteGraphNeedsNoForwardNodes) {
    // Paper: "when the network is a complete graph, there is no need of a
    // forward node" — every node satisfies the coverage condition.
    const Graph g = complete_graph(6);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const auto fwd = generic_static_forward_set(g, 2, keys, {});
    EXPECT_EQ(set_size(fwd), 0u);

    const auto result = run_config(g, 3, generic_static_config(2));
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);  // source only
}

TEST(GenericStatic, BroadcastCoversViaStaticSet) {
    const Graph g = grid_graph(3, 4);
    for (NodeId src = 0; src < g.node_count(); ++src) {
        const auto result = run_config(g, src, generic_static_config(2));
        EXPECT_TRUE(result.full_delivery) << "source " << src;
        EXPECT_TRUE(check_broadcast(g, src, result).ok()) << "source " << src;
    }
}

TEST(GenericFr, TriangleOnlySourceForwards) {
    const Graph g = complete_graph(3);
    const auto result = run_config(g, 0, generic_fr_config(2));
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);
}

TEST(GenericFr, CycleFourDeterministicOutcome) {
    // From source 0 on C4: node 1 prunes (0 visited + 2,3 higher), node 3
    // forwards, node 2 then prunes.  Forward set {0,3}.
    const Graph g = cycle_graph(4);
    const auto result = run_config(g, 0, generic_fr_config(2));
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 2u);
    EXPECT_TRUE(result.transmitted[0]);
    EXPECT_TRUE(result.transmitted[3]);
    EXPECT_FALSE(result.transmitted[1]);
    EXPECT_FALSE(result.transmitted[2]);
}

TEST(GenericFr, PathEveryInteriorForwards) {
    const Graph g = path_graph(6);
    const auto result = run_config(g, 0, generic_fr_config(2));
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 5u);  // all but the far leaf
    EXPECT_FALSE(result.transmitted[5]);
}

TEST(GenericFr, FewerForwardsThanFloodingOnGrid) {
    const Graph g = grid_graph(5, 5);
    const auto result = run_config(g, 12, generic_fr_config(2));
    EXPECT_TRUE(result.full_delivery);
    EXPECT_LT(result.forward_count, g.node_count());
    EXPECT_TRUE(check_broadcast(g, 12, result).ok());
}

TEST(GenericNd, StarSourceCentreNeedsNoDesignation) {
    const Graph g = star_graph(6);
    GenericConfig cfg = generic_fr_config(2);
    cfg.selection = Selection::kNeighborDesignating;
    const auto result = run_config(g, 0, cfg);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);
}

TEST(GenericNd, PathDesignationChain) {
    const Graph g = path_graph(4);
    GenericConfig cfg = generic_fr_config(2);
    cfg.selection = Selection::kNeighborDesignating;
    const auto result = run_config(g, 0, cfg);
    EXPECT_TRUE(result.full_delivery);
    // 0 designates 1, 1 designates 2; 3 is a leaf and stays silent.
    EXPECT_EQ(result.forward_count, 3u);
    EXPECT_FALSE(result.transmitted[3]);
}

TEST(GenericNd, NonDesignatedNodesStaySilent) {
    const Graph g = star_graph(6);
    GenericConfig cfg = generic_fr_config(2);
    cfg.selection = Selection::kNeighborDesignating;
    // From a leaf: leaf designates the center; other leaves stay silent.
    const auto result = run_config(g, 3, cfg);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 2u);
    EXPECT_TRUE(result.transmitted[0]);
}

TEST(GenericHybrid, DesignatesAtMostOneNeighbor) {
    const Graph g = grid_graph(4, 4);
    GenericConfig cfg = hybrid_config(Selection::kHybridMaxDegree);
    GenericBroadcast algo(cfg);
    Rng rng(3);
    const auto result = algo.broadcast_traced(g, 5, rng, {});
    EXPECT_TRUE(result.full_delivery);
    // Each transmission designates at most one node.
    std::size_t designations = result.trace.count(TraceKind::kDesignate);
    EXPECT_LE(designations, result.forward_count);
}

TEST(GenericHybrid, CoversGridFromEveryCorner) {
    const Graph g = grid_graph(4, 4);
    for (NodeId src : {0u, 3u, 12u, 15u}) {
        for (Selection sel : {Selection::kHybridMaxDegree, Selection::kHybridMinId}) {
            const auto result = run_config(g, src, hybrid_config(sel));
            EXPECT_TRUE(result.full_delivery)
                << "src=" << src << " sel=" << to_string(sel);
        }
    }
}

TEST(GenericTimings, BackoffVariantsStillCover) {
    const Graph g = grid_graph(4, 5);
    for (Timing t : {Timing::kRandomBackoff, Timing::kDegreeBackoff}) {
        GenericConfig cfg = generic_fr_config(2);
        cfg.timing = t;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const auto result = run_config(g, 7, cfg, seed);
            EXPECT_TRUE(result.full_delivery) << to_string(t) << " seed " << seed;
        }
    }
}

TEST(GenericTimings, BackoffNeverWorseThanStaticOnAverage) {
    // Deterministic smoke version of Figure 10's ordering on one grid.
    const Graph g = grid_graph(5, 5);
    double static_total = 0, frb_total = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        static_total += static_cast<double>(
            run_config(g, 0, generic_static_config(2, PriorityScheme::kId), seed)
                .forward_count);
        frb_total += static_cast<double>(
            run_config(g, 0, generic_frb_config(2), seed).forward_count);
    }
    EXPECT_LE(frb_total, static_total);
}

TEST(GenericSpace, GlobalInformationSupported) {
    const Graph g = grid_graph(4, 4);
    GenericConfig cfg = generic_fr_config(0);  // k=0 -> global
    const auto result = run_config(g, 0, cfg);
    EXPECT_TRUE(result.full_delivery);
}

TEST(GenericSpace, MoreHopsNeverHurtOnAverage) {
    const Graph g = grid_graph(5, 5);
    double k2 = 0, k4 = 0;
    for (NodeId src = 0; src < g.node_count(); src += 3) {
        k2 += static_cast<double>(run_config(g, src, generic_fr_config(2)).forward_count);
        k4 += static_cast<double>(run_config(g, src, generic_fr_config(4)).forward_count);
    }
    EXPECT_LE(k4, k2);
}

TEST(GenericPriority, AllSchemesCover) {
    const Graph g = grid_graph(4, 5);
    for (PriorityScheme p :
         {PriorityScheme::kId, PriorityScheme::kDegree, PriorityScheme::kNcr}) {
        const auto result = run_config(g, 9, generic_fr_config(2, p));
        EXPECT_TRUE(result.full_delivery) << to_string(p);
    }
}

TEST(GenericConfigSummary, MentionsAxes) {
    const GenericConfig cfg = generic_frb_config(3, PriorityScheme::kNcr);
    const std::string s = cfg.summary();
    EXPECT_NE(s.find("FRB"), std::string::npos);
    EXPECT_NE(s.find("k=3"), std::string::npos);
    EXPECT_NE(s.find("NCR"), std::string::npos);
}

TEST(GenericRelaxed, RelaxedDesignationStillCovers) {
    const Graph g = grid_graph(4, 4);
    GenericConfig cfg = hybrid_config(Selection::kHybridMaxDegree);
    cfg.strict_designation = false;  // S=1.5 relaxed rule
    for (NodeId src : {0u, 5u, 10u, 15u}) {
        const auto result = run_config(g, src, cfg);
        EXPECT_TRUE(result.full_delivery) << "src " << src;
    }
}

TEST(GenericStrong, StrongCoverageVariantCoversButPrunesLess) {
    const Graph g = grid_graph(5, 5);
    GenericConfig full = generic_fr_config(2);
    GenericConfig strong = full;
    strong.coverage.strong = true;
    std::size_t full_total = 0, strong_total = 0;
    for (NodeId src = 0; src < g.node_count(); src += 4) {
        const auto rf = run_config(g, src, full);
        const auto rs = run_config(g, src, strong);
        EXPECT_TRUE(rf.full_delivery);
        EXPECT_TRUE(rs.full_delivery);
        full_total += rf.forward_count;
        strong_total += rs.forward_count;
    }
    EXPECT_LE(full_total, strong_total);
}

}  // namespace
}  // namespace adhoc
