// Unit tests for the probabilistic gossip baseline.

#include "algorithms/gossip.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"

namespace adhoc {
namespace {

TEST(Gossip, ProbabilityOneIsFlooding) {
    const GossipAlgorithm algo(1.0);
    const Graph g = grid_graph(4, 4);
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_EQ(result.forward_count, g.node_count());
    EXPECT_TRUE(result.full_delivery);
}

TEST(Gossip, ProbabilityZeroOnlySourceSends) {
    const GossipAlgorithm algo(0.0);
    const Graph g = grid_graph(4, 4);
    Rng rng(1);
    const auto result = algo.broadcast(g, 5, rng);
    EXPECT_EQ(result.forward_count, 1u);
    EXPECT_FALSE(result.full_delivery);
}

TEST(Gossip, CannotGuaranteeCoverage) {
    // Paper Section 1: the probabilistic approach cannot guarantee full
    // coverage.  At p=0.5 on a long path some run must fail.
    const GossipAlgorithm algo(0.5);
    const Graph g = path_graph(30);
    std::size_t failures = 0;
    for (std::uint64_t run = 0; run < 50; ++run) {
        Rng rng(runner::derive_run_seed(4242, g.node_count(), 0.5, run));
        if (!algo.broadcast(g, 0, rng).full_delivery) ++failures;
    }
    EXPECT_GT(failures, 0u);
    EXPECT_EQ(failures, 50u);  // pinned golden for the derived-seed stream
}

TEST(Gossip, HigherPImprovesDelivery) {
    Rng gen(5);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);

    auto delivered_total = [&](double p) {
        const GossipAlgorithm algo(p);
        std::size_t total = 0;
        for (std::uint64_t run = 0; run < 40; ++run) {
            Rng rng(runner::derive_run_seed(5, net.graph.node_count(), p, run));
            total += algo.broadcast(net.graph, 0, rng).received_count;
        }
        return total;
    };
    const std::size_t low = delivered_total(0.3);
    const std::size_t high = delivered_total(0.9);
    EXPECT_LT(low, high);
    EXPECT_EQ(low, 870u);    // pinned golden
    EXPECT_EQ(high, 2374u);  // pinned golden
}

TEST(Gossip, NameIncludesProbability) {
    EXPECT_NE(GossipAlgorithm(0.7).name().find("0.7"), std::string::npos);
}

TEST(Gossip, DeterministicUnderSeed) {
    const GossipAlgorithm algo(0.6);
    const Graph g = grid_graph(5, 5);
    Rng a(9), b(9);
    EXPECT_EQ(algo.broadcast(g, 0, a).transmitted, algo.broadcast(g, 0, b).transmitted);
}

}  // namespace
}  // namespace adhoc
