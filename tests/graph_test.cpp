// Unit tests for the undirected graph substrate.

#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace adhoc {
namespace {

TEST(Graph, EmptyGraphHasNoNodesOrEdges) {
    Graph g;
    EXPECT_EQ(g.node_count(), 0u);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, IsolatedNodesHaveZeroDegree) {
    Graph g(5);
    EXPECT_EQ(g.node_count(), 5u);
    for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, AddEdgeIsSymmetric) {
    Graph g(3);
    EXPECT_TRUE(g.add_edge(0, 2));
    EXPECT_TRUE(g.has_edge(0, 2));
    EXPECT_TRUE(g.has_edge(2, 0));
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, AddDuplicateEdgeIsNoOp) {
    Graph g(3);
    EXPECT_TRUE(g.add_edge(0, 1));
    EXPECT_FALSE(g.add_edge(0, 1));
    EXPECT_FALSE(g.add_edge(1, 0));
    EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, SelfLoopRejected) {
    Graph g(2);
    EXPECT_FALSE(g.add_edge(1, 1));
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Graph, RemoveEdge) {
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    EXPECT_TRUE(g.remove_edge(1, 0));
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 2));
    EXPECT_EQ(g.edge_count(), 1u);
    EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
}

TEST(Graph, NeighborsAreSortedAscending) {
    Graph g(6);
    g.add_edge(3, 5);
    g.add_edge(3, 0);
    g.add_edge(3, 4);
    g.add_edge(3, 1);
    const auto nbrs = g.neighbors(3);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Graph, EdgeListConstructorCollapsesDuplicates) {
    const std::vector<Edge> edges{{0, 1}, {1, 0}, {1, 2}, {1, 2}};
    Graph g(3, edges);
    EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Graph, EdgesAreCanonicalAndSorted) {
    Graph g(4);
    g.add_edge(3, 1);
    g.add_edge(2, 0);
    const auto edges = g.edges();
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], (Edge{0, 2}));
    EXPECT_EQ(edges[1], (Edge{1, 3}));
}

TEST(Graph, ConnectedNeighborPairsCountsTriangles) {
    // Triangle 0-1-2 plus pendant 3 on node 0.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    EXPECT_EQ(g.connected_neighbor_pairs(0), 1u);  // (1,2) of 3 pairs
    EXPECT_EQ(g.connected_neighbor_pairs(1), 1u);
    EXPECT_EQ(g.connected_neighbor_pairs(3), 0u);
}

TEST(Graph, NeighborsPairwiseConnectedDetectsOpenPairs) {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    EXPECT_FALSE(g.neighbors_pairwise_connected(0));  // 1 and 2 unlinked
    g.add_edge(1, 2);
    EXPECT_TRUE(g.neighbors_pairwise_connected(0));
    EXPECT_TRUE(g.neighbors_pairwise_connected(3));  // vacuous for isolated
}

TEST(Graph, CompleteGraphProperties) {
    const Graph g = complete_graph(5);
    EXPECT_EQ(g.edge_count(), 10u);
    for (NodeId v = 0; v < 5; ++v) {
        EXPECT_EQ(g.degree(v), 4u);
        EXPECT_TRUE(g.neighbors_pairwise_connected(v));
    }
}

TEST(Graph, PathAndCycleBuilders) {
    const Graph p = path_graph(4);
    EXPECT_EQ(p.edge_count(), 3u);
    EXPECT_EQ(p.degree(0), 1u);
    EXPECT_EQ(p.degree(1), 2u);

    const Graph c = cycle_graph(4);
    EXPECT_EQ(c.edge_count(), 4u);
    for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(c.degree(v), 2u);
}

TEST(Graph, StarBuilder) {
    const Graph s = star_graph(6);
    EXPECT_EQ(s.degree(0), 5u);
    for (NodeId v = 1; v < 6; ++v) EXPECT_EQ(s.degree(v), 1u);
}

TEST(Graph, GridBuilder) {
    const Graph g = grid_graph(3, 4);
    EXPECT_EQ(g.node_count(), 12u);
    // 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8.
    EXPECT_EQ(g.edge_count(), 17u);
    EXPECT_EQ(g.degree(0), 2u);   // corner
    EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

TEST(Graph, StructuralEquality) {
    Graph a(3), b(3);
    a.add_edge(0, 1);
    b.add_edge(0, 1);
    EXPECT_EQ(a, b);
    b.add_edge(1, 2);
    EXPECT_NE(a, b);
}

TEST(Graph, CanonicalEdge) {
    EXPECT_EQ(canonical(Edge{5, 2}), (Edge{2, 5}));
    EXPECT_EQ(canonical(Edge{2, 5}), (Edge{2, 5}));
}

TEST(Graph, HasEdgeOnInvalidNodesIsFalse) {
    Graph g(2);
    g.add_edge(0, 1);
    EXPECT_FALSE(g.has_edge(0, 7));
    EXPECT_FALSE(g.has_edge(7, 9));
}

// has_edge binary-searches the *shorter* adjacency list, so queries from a
// hub against a leaf and vice versa must agree — exercised on a star (the
// maximally asymmetric degree distribution) in both argument orders.
TEST(Graph, HasEdgeSearchesShorterListSymmetrically) {
    const std::size_t n = 40;
    Graph g = star_graph(n);
    g.add_edge(3, 4);  // one leaf-leaf edge so not everything goes via hub
    for (NodeId leaf = 1; leaf < n; ++leaf) {
        EXPECT_TRUE(g.has_edge(0, leaf));
        EXPECT_TRUE(g.has_edge(leaf, 0));
    }
    EXPECT_TRUE(g.has_edge(3, 4));
    EXPECT_TRUE(g.has_edge(4, 3));
    EXPECT_FALSE(g.has_edge(5, 6));
    EXPECT_FALSE(g.has_edge(6, 5));
}

TEST(Graph, FromSortedEdgesMatchesIncrementalConstruction) {
    const std::vector<Edge> edges = {{0, 1}, {0, 3}, {1, 2}, {1, 4}, {2, 3}, {3, 4}};
    const Graph bulk = Graph::from_sorted_edges(5, edges);
    const Graph incremental(5, edges);
    EXPECT_EQ(bulk, incremental);
    EXPECT_EQ(bulk.edge_count(), edges.size());
    // Rows must come out sorted (the class invariant add_edge maintains).
    for (NodeId v = 0; v < 5; ++v) {
        const auto nv = bulk.neighbors(v);
        EXPECT_TRUE(std::is_sorted(nv.begin(), nv.end()));
    }
}

TEST(Graph, FromSortedEdgesEmptyAndIsolated) {
    const Graph g = Graph::from_sorted_edges(4, {});
    EXPECT_EQ(g.node_count(), 4u);
    EXPECT_EQ(g.edge_count(), 0u);
    const Graph h = Graph::from_sorted_edges(6, {{2, 5}});
    EXPECT_TRUE(h.has_edge(2, 5));
    EXPECT_EQ(h.degree(0), 0u);
}

}  // namespace
}  // namespace adhoc
