// Unit tests for the centralized Guha-Khuller greedy CDS.

#include "algorithms/guha_khuller.hpp"

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(GuhaKhuller, TrivialGraphs) {
    EXPECT_EQ(set_size(guha_khuller_cds(Graph(1))), 0u);
    EXPECT_EQ(set_size(guha_khuller_cds(Graph(0))), 0u);
    // Star: the center alone.
    const auto star = guha_khuller_cds(star_graph(6));
    EXPECT_EQ(set_size(star), 1u);
    EXPECT_TRUE(star[0]);
    // Complete graph: one node suffices.
    EXPECT_EQ(set_size(guha_khuller_cds(complete_graph(5))), 1u);
}

TEST(GuhaKhuller, PathInterior) {
    const auto cds = guha_khuller_cds(path_graph(5));
    EXPECT_TRUE(is_cds(path_graph(5), cds));
    EXPECT_EQ(set_size(cds), 3u);  // optimal: nodes 1,2,3
}

TEST(GuhaKhuller, AlwaysCdsOnRandomNetworks) {
    Rng rng(139);
    UnitDiskParams params;
    params.node_count = 70;
    params.average_degree = 6.0;
    for (int i = 0; i < 15; ++i) {
        const auto net = generate_network_checked(params, rng);
        EXPECT_TRUE(is_cds(net.graph, guha_khuller_cds(net.graph))) << i;
    }
}

TEST(GuhaKhuller, BeatsOrMatchesDistributedStaticOnAverage) {
    // Global greedy is the quality yardstick: it should produce no larger
    // a CDS than the 2-hop static coverage condition on average.
    Rng rng(149);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    double greedy_total = 0, generic_total = 0;
    for (int i = 0; i < 20; ++i) {
        const auto net = generate_network_checked(params, rng);
        const PriorityKeys keys(net.graph, PriorityScheme::kId);
        greedy_total += static_cast<double>(set_size(guha_khuller_cds(net.graph)));
        generic_total += static_cast<double>(
            set_size(generic_static_forward_set(net.graph, 2, keys, {})));
    }
    EXPECT_LE(greedy_total, generic_total);
}

TEST(GuhaKhuller, BroadcastDelivers) {
    const GuhaKhullerAlgorithm algo;
    const Graph g = grid_graph(5, 5);
    Rng rng(1);
    for (NodeId src : {0u, 12u, 24u}) {
        const auto result = algo.broadcast(g, src, rng);
        EXPECT_TRUE(result.full_delivery) << src;
        EXPECT_TRUE(check_broadcast(g, src, result).ok()) << src;
    }
}

}  // namespace
}  // namespace adhoc
