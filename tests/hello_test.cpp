// Unit and integration tests for the simulated hello protocol.  The key
// theorem-level check: k lossless rounds reproduce Definition 2's G_k(v)
// exactly, and lossy rounds produce sub-views that remain safe for the
// coverage condition (Theorem 2).

#include "sim/hello.hpp"

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

void expect_views_equal(const LocalTopology& hello, const LocalTopology& analytic,
                        NodeId v, std::size_t k) {
    EXPECT_EQ(hello.visible, analytic.visible) << "node " << v << " k=" << k;
    EXPECT_EQ(hello.graph, analytic.graph) << "node " << v << " k=" << k;
}

TEST(Hello, LosslessRoundsReproduceDefinition2Exactly) {
    Rng gen(199);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    for (std::size_t k : {1u, 2u, 3u, 4u}) {
        Rng rng(1);
        const auto views = hello_views(net.graph, k, rng);
        for (NodeId v = 0; v < net.graph.node_count(); ++v) {
            expect_views_equal(views[v], local_topology(net.graph, v, k), v, k);
        }
    }
}

TEST(Hello, DeterministicToyGraphs) {
    for (const Graph& g : {path_graph(6), cycle_graph(7), grid_graph(3, 4),
                           star_graph(5), complete_graph(4)}) {
        for (std::size_t k : {1u, 2u, 3u}) {
            Rng rng(3);
            const auto views = hello_views(g, k, rng);
            for (NodeId v = 0; v < g.node_count(); ++v) {
                expect_views_equal(views[v], local_topology(g, v, k), v, k);
            }
        }
    }
}

TEST(Hello, LossyViewsAreSubViews) {
    Rng gen(211);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, gen);
    HelloProtocol hello(net.graph, HelloConfig{.rounds = 2, .loss_probability = 0.4});
    Rng rng(5);
    hello.run(rng);
    for (NodeId v = 0; v < net.graph.node_count(); ++v) {
        const auto lossy = hello.view_of(v);
        const auto full = local_topology(net.graph, v, 2);
        for (NodeId x = 0; x < net.graph.node_count(); ++x) {
            if (lossy.visible[x]) EXPECT_TRUE(full.visible[x]) << v << "/" << x;
        }
        for (const Edge& e : lossy.graph.edges()) {
            EXPECT_TRUE(full.graph.has_edge(e.a, e.b)) << v;
            EXPECT_TRUE(net.graph.has_edge(e.a, e.b)) << v;  // never invents links
        }
    }
}

TEST(Hello, OverheadGrowsWithRounds) {
    const Graph g = grid_graph(5, 5);
    std::size_t prev_bytes = 0;
    for (std::size_t k : {1u, 2u, 3u}) {
        HelloProtocol hello(g, HelloConfig{.rounds = k});
        Rng rng(1);
        hello.run(rng);
        EXPECT_EQ(hello.total_messages(), g.node_count() * k);
        EXPECT_GT(hello.total_bytes(), prev_bytes);
        prev_bytes = hello.total_bytes();
    }
}

TEST(Hello, BroadcastOverHelloViewsMatchesAnalytic) {
    // End-to-end: the generic FR protocol driven by hello-built views must
    // produce the identical forward set to the analytic k-hop views.
    Rng gen(223);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);

    const GenericConfig cfg = generic_fr_config(2);
    Rng hello_rng(7);
    auto views = hello_views(net.graph, 2, hello_rng);

    GenericAgent hello_agent(net.graph, cfg, std::move(views));
    Simulator sim_hello(net.graph);
    Rng r1(9);
    const auto via_hello = sim_hello.run(0, hello_agent, r1);

    GenericAgent analytic_agent(net.graph, cfg);
    Simulator sim_analytic(net.graph);
    Rng r2(9);
    const auto via_analytic = sim_analytic.run(0, analytic_agent, r2);

    EXPECT_EQ(via_hello.transmitted, via_analytic.transmitted);
    EXPECT_TRUE(via_hello.full_delivery);
}

TEST(Hello, LossyViewsStillYieldCoveringBroadcast) {
    // Theorem 2: edge-underinformed sub-views are safe (fewer prunes, no
    // coverage hole) PROVIDED 1-hop neighbor knowledge is complete — hello
    // repetition makes neighbor discovery reliable in practice.
    Rng gen(227);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);

    for (double loss : {0.2, 0.5, 0.8}) {
        HelloProtocol hello(net.graph, HelloConfig{.rounds = 2, .loss_probability = loss});
        Rng hrng(static_cast<std::uint64_t>(loss * 100));
        hello.run(hrng);
        std::vector<LocalTopology> views;
        for (NodeId v = 0; v < net.graph.node_count(); ++v) views.push_back(hello.view_of(v));

        GenericAgent agent(net.graph, generic_fr_config(2), std::move(views));
        Simulator sim(net.graph);
        Rng rng(3);
        const auto result = sim.run(0, agent, rng);
        EXPECT_TRUE(result.full_delivery) << "loss " << loss;
        EXPECT_TRUE(check_broadcast(net.graph, 0, result).ok()) << "loss " << loss;
    }
}

TEST(Hello, StaticForwardSetOverHelloViewsMatchesAnalytic) {
    // The static-timing branch of the view-injecting agent constructor.
    Rng gen(239);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    Rng hrng(3);
    auto views = hello_views(net.graph, 2, hrng);

    const GenericConfig cfg = generic_static_config(2, PriorityScheme::kId);
    GenericAgent from_hello(net.graph, cfg, std::move(views));
    GenericAgent analytic(net.graph, cfg);
    EXPECT_EQ(from_hello.static_forward_set(), analytic.static_forward_set());
}

TEST(Hello, UnknownNeighborsCanBreakCoverage) {
    // The negative counterpart: when even round-1 hellos are lossy, a node
    // can prune while an unknown neighbor depends on it.  Theorem 2's
    // local-view safety does NOT extend to incomplete neighbor sets; some
    // seed below must exhibit a delivery failure.
    Rng gen(233);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);

    bool any_failure = false;
    for (std::uint64_t seed = 0; seed < 30 && !any_failure; ++seed) {
        HelloProtocol hello(net.graph,
                            HelloConfig{.rounds = 2,
                                        .loss_probability = 0.6,
                                        .reliable_neighbor_discovery = false});
        Rng hrng(seed);
        hello.run(hrng);
        std::vector<LocalTopology> views;
        for (NodeId v = 0; v < net.graph.node_count(); ++v) views.push_back(hello.view_of(v));
        GenericAgent agent(net.graph, generic_fr_config(2), std::move(views));
        Simulator sim(net.graph);
        Rng rng(3);
        any_failure = !sim.run(0, agent, rng).full_delivery;
    }
    EXPECT_TRUE(any_failure);
}

TEST(Hello, MoreLossMeansMoreForwardsOnAverage) {
    Rng gen(229);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, gen);

    auto mean_forwards = [&](double loss) {
        double total = 0;
        const int runs = 10;
        for (int i = 0; i < runs; ++i) {
            HelloProtocol hello(net.graph, HelloConfig{.rounds = 2, .loss_probability = loss});
            Rng hrng(static_cast<std::uint64_t>(i) * 31 + 1);
            hello.run(hrng);
            std::vector<LocalTopology> views;
            for (NodeId v = 0; v < net.graph.node_count(); ++v) {
                views.push_back(hello.view_of(v));
            }
            GenericAgent agent(net.graph, generic_fr_config(2), std::move(views));
            Simulator sim(net.graph);
            Rng rng(3);
            total += static_cast<double>(sim.run(0, agent, rng).forward_count);
        }
        return total / runs;
    };
    EXPECT_LE(mean_forwards(0.0), mean_forwards(0.6));
}

// ---- Neighbor liveness aging (PR 5) -----------------------------------

TEST(HelloLiveness, LosslessRunNeverAges) {
    const Graph g = path_graph(4);
    HelloProtocol hello(g, HelloConfig{.rounds = 4, .liveness_timeout = 2});
    Rng rng(1);
    hello.run(rng);
    EXPECT_EQ(hello.aged_out(), 0u);
    for (NodeId v = 0; v < 4; ++v) {
        EXPECT_FALSE(hello.view_stale(v)) << "node " << v;
        EXPECT_FALSE(hello.view_of(v).stale);
    }
}

TEST(HelloLiveness, SilentNeighborAgesOutAndMarksViewStale) {
    // Node 2 bursts (all its HELLOs lost) from round 1 on: after
    // `liveness_timeout` silent rounds node 1 must evict the 1-2 entry.
    faults::FaultPlan plan;
    plan.hello_bursts = {{2, 1, 3}};
    const Graph g = path_graph(3);
    HelloProtocol hello(g, HelloConfig{.rounds = 4, .liveness_timeout = 2}, &plan);
    Rng rng(1);
    hello.run(rng);
    EXPECT_GE(hello.aged_out(), 1u);
    EXPECT_EQ(hello.burst_drops(), 3u);  // node 2 has one neighbor, three burst rounds
    EXPECT_TRUE(hello.view_stale(1));
    EXPECT_TRUE(hello.view_of(1).stale);
    EXPECT_FALSE(hello.view_of(1).graph.has_edge(1, 2));
    // Node 0 heard node 1 every round: its view stays fresh.
    EXPECT_FALSE(hello.view_stale(0));
    EXPECT_TRUE(hello.view_of(0).graph.has_edge(0, 1));
}

TEST(HelloLiveness, TimeoutZeroKeepsHistoricalBehavior) {
    faults::FaultPlan plan;
    plan.hello_bursts = {{2, 1, 3}};
    const Graph g = path_graph(3);
    HelloProtocol hello(g, HelloConfig{.rounds = 4}, &plan);
    Rng rng(1);
    hello.run(rng);
    EXPECT_EQ(hello.aged_out(), 0u);
    EXPECT_FALSE(hello.view_stale(1));
    // The entry learned in round 0 survives: no aging without a timeout.
    EXPECT_TRUE(hello.view_of(1).graph.has_edge(1, 2));
}

TEST(HelloLiveness, AnalyticViewsAreNeverStale) {
    const Graph g = cycle_graph(5);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_FALSE(local_topology(g, v, 2).stale);
    }
}

}  // namespace
}  // namespace adhoc
