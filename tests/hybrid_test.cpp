// Unit tests for the hybrid MaxDeg/MinPri algorithms (Section 6.4),
// exercising the behavioral claims around the paper's Figure 8.

#include "algorithms/hybrid.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Hybrid, BothPoliciesDeliverOnRandomNetworks) {
    Rng rng(109);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const GenericBroadcast maxdeg = make_hybrid_maxdeg();
    const GenericBroadcast minpri = make_hybrid_minpri();
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        const NodeId src = static_cast<NodeId>(a.index(60));
        const auto rm = maxdeg.broadcast(net.graph, src, a);
        const auto rp = minpri.broadcast(net.graph, src, b);
        EXPECT_TRUE(rm.full_delivery) << "MaxDeg " << i;
        EXPECT_TRUE(rp.full_delivery) << "MinPri " << i;
        EXPECT_TRUE(check_broadcast(net.graph, src, rm).ok()) << i;
        EXPECT_TRUE(check_broadcast(net.graph, src, rp).ok()) << i;
    }
}

TEST(Hybrid, DesignatedNodeForwardsUnderStrictRule) {
    // Star + far leaf: 0 center; leaves 1..3; 3-4.  From source 1, the
    // center must be designated (it covers 2-hop neighbors) and forwards;
    // then 3 is designated to cover 4.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(3, 4);
    const GenericBroadcast algo = make_hybrid_maxdeg();
    Rng rng(1);
    const auto result = algo.broadcast(g, 1, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_TRUE(result.transmitted[0]);
    EXPECT_TRUE(result.transmitted[3]);
}

TEST(Hybrid, PoliciesCanDiffer) {
    // Figure 8's point: MaxDeg and MinPri pick different designated
    // neighbors and can produce different forward sets.  Verify they
    // differ on at least one random network.
    Rng rng(113);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const GenericBroadcast maxdeg = make_hybrid_maxdeg();
    const GenericBroadcast minpri = make_hybrid_minpri();
    bool any_difference = false;
    for (int i = 0; i < 20 && !any_difference; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        const auto rm = maxdeg.broadcast(net.graph, 0, a);
        const auto rp = minpri.broadcast(net.graph, 0, b);
        any_difference = (rm.transmitted != rp.transmitted);
    }
    EXPECT_TRUE(any_difference);
}

TEST(Hybrid, MaxDegBeatsMinPriOnSparseAverages) {
    // Figure 11 (sparse): MinPri is the worst policy, MaxDeg the best.
    Rng rng(127);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const GenericBroadcast maxdeg = make_hybrid_maxdeg();
    const GenericBroadcast minpri = make_hybrid_minpri();
    double md = 0, mp = 0;
    for (int i = 0; i < 40; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        md += static_cast<double>(maxdeg.broadcast(net.graph, 0, a).forward_count);
        mp += static_cast<double>(minpri.broadcast(net.graph, 0, b).forward_count);
    }
    EXPECT_LT(md, mp);
}

TEST(Hybrid, AtMostOneDesignationPerForwardNode) {
    const Graph g = grid_graph(5, 4);
    const GenericBroadcast algo = make_hybrid_maxdeg();
    Rng rng(5);
    const auto result = algo.broadcast_traced(g, 3, rng, {});
    std::vector<std::size_t> designations_by(g.node_count(), 0);
    for (const TraceEvent& e : result.trace.events()) {
        if (e.kind == TraceKind::kDesignate) ++designations_by[e.other];
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_LE(designations_by[v], 1u) << "node " << v << " designated more than once";
    }
}

}  // namespace
}  // namespace adhoc
