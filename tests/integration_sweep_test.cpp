// Integration tests: miniature versions of the paper's figure sweeps,
// checking the qualitative shapes end to end through the experiment
// harness (the full-scale versions live in bench/).

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "algorithms/hybrid.hpp"
#include "stats/experiment.hpp"

namespace adhoc {
namespace {

ExperimentConfig mini(double degree) {
    ExperimentConfig cfg;
    cfg.node_counts = {40, 80};
    cfg.average_degree = degree;
    cfg.min_runs = 25;
    cfg.max_runs = 60;
    cfg.seed = 1234;
    return cfg;
}

double total(const AlgorithmSeries& s) {
    double sum = 0;
    for (const auto& p : s.points) sum += p.mean_forward;
    return sum;
}

TEST(IntegrationSweep, Figure10TimingOrdering) {
    const GenericBroadcast stat(generic_static_config(2, PriorityScheme::kId), "Static");
    const GenericBroadcast fr(generic_fr_config(2), "FR");
    const GenericBroadcast frb(generic_frb_config(2), "FRB");
    const GenericBroadcast frbd(generic_frbd_config(2), "FRBD");
    auto cfg = mini(6.0);
    cfg.node_counts = {60, 80};  // the FR/FRB gap needs scale to show
    cfg.min_runs = 50;
    cfg.max_runs = 80;
    const auto series = run_sweep({&stat, &fr, &frb, &frbd}, cfg);
    EXPECT_GT(total(series[0]), total(series[1]));         // Static > FR
    EXPECT_LT(total(series[2]), total(series[1]) * 1.01);  // FRB <= FR (noise margin)
    EXPECT_LE(total(series[3]), total(series[2]) * 1.03);  // FRBD ~= FRB
    // No delivery failures anywhere.
    for (const auto& s : series) {
        for (const auto& p : s.points) EXPECT_EQ(p.delivery_failures, 0u) << s.name;
    }
}

TEST(IntegrationSweep, Figure12SpaceDiminishingReturns) {
    const GenericBroadcast k2(generic_fr_config(2), "2-hop");
    const GenericBroadcast k3(generic_fr_config(3), "3-hop");
    const GenericBroadcast kg(generic_fr_config(0), "global");
    const auto series = run_sweep({&k2, &k3, &kg}, mini(6.0));
    EXPECT_GE(total(series[0]), total(series[1]));  // 2-hop >= 3-hop
    EXPECT_GE(total(series[1]), total(series[2]));  // 3-hop >= global
    // Diminishing returns: 2->3 gains at least as much as 3->global... the
    // paper only claims the difference becomes marginal; assert 3-hop is
    // already within 15% of global.
    EXPECT_LE(total(series[1]), total(series[2]) * 1.15);
}

TEST(IntegrationSweep, Figure13PriorityOrdering) {
    const GenericBroadcast id(generic_fr_config(2, PriorityScheme::kId), "ID");
    const GenericBroadcast deg(generic_fr_config(2, PriorityScheme::kDegree), "Degree");
    const GenericBroadcast ncr(generic_fr_config(2, PriorityScheme::kNcr), "NCR");
    const auto series = run_sweep({&id, &deg, &ncr}, mini(6.0));
    EXPECT_GE(total(series[0]), total(series[1]) * 0.98);  // ID >= Degree
    EXPECT_GE(total(series[1]), total(series[2]) * 0.98);  // Degree >= NCR
}

TEST(IntegrationSweep, Figure11SelectionSparseOrdering) {
    const GenericBroadcast sp(generic_fr_config(2), "SP");
    const GenericBroadcast maxdeg = make_hybrid_maxdeg();
    const GenericBroadcast minpri = make_hybrid_minpri();
    const auto series = run_sweep({&sp, &maxdeg, &minpri}, mini(6.0));
    // Sparse networks: MinPri is the worst of the three.
    EXPECT_GE(total(series[2]), total(series[0]));
    EXPECT_GE(total(series[2]), total(series[1]));
}

}  // namespace
}  // namespace adhoc
