// Unit tests for trace invariants.

#include "verify/invariants.hpp"

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"

namespace adhoc {
namespace {

TEST(Invariants, FloodingTraceIsClean) {
    const FloodingAlgorithm algo;
    const Graph g = grid_graph(3, 4);
    Rng rng(1);
    const auto result = algo.broadcast_traced(g, 0, rng, {});
    const auto report = check_invariants(g, 0, result);
    EXPECT_TRUE(report.ok) << report.describe();
}

TEST(Invariants, GenericFrTraceIsClean) {
    const GenericBroadcast algo(generic_fr_config(2));
    const Graph g = grid_graph(4, 4);
    Rng rng(2);
    const auto result = algo.broadcast_traced(g, 5, rng, {});
    const auto report = check_invariants(g, 5, result);
    EXPECT_TRUE(report.ok) << report.describe();
}

TEST(Invariants, DetectsDoubleTransmit) {
    const Graph g = path_graph(2);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 0);
    result.trace.record(1.0, TraceKind::kTransmit, 0);
    result.transmitted = {1, 0};
    result.received = {1, 0};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I1"), std::string::npos);
}

TEST(Invariants, DetectsTransmitBeforeReceive) {
    const Graph g = path_graph(2);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 1);  // node 1 is not source
    result.transmitted = {0, 1};
    result.received = {0, 1};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I2"), std::string::npos);
}

TEST(Invariants, DetectsReceiveFromNonNeighbor) {
    const Graph g = path_graph(3);  // 0-1-2; 0 and 2 not adjacent
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 0);
    result.trace.record(1.0, TraceKind::kReceive, 2, 0);
    result.transmitted = {1, 0, 0};
    result.received = {1, 0, 1};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I3"), std::string::npos);
}

TEST(Invariants, DetectsTimeRegression) {
    const Graph g = path_graph(2);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(2.0, TraceKind::kTransmit, 0);
    result.trace.record(1.0, TraceKind::kReceive, 1, 0);
    result.transmitted = {1, 0};
    result.received = {1, 1};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I4"), std::string::npos);
}

TEST(Invariants, DetectsMaskMismatch) {
    const Graph g = path_graph(2);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 0);
    result.transmitted = {1, 1};  // node 1 claims to have transmitted
    result.received = {1, 0};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I5"), std::string::npos);
}

TEST(Invariants, DetectsPhantomWitness) {
    // A receipt naming a sender that never transmitted: the trace invents a
    // witness.  I3 requires the sender to be a *transmitting* neighbor.
    const Graph g = path_graph(3);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 0);
    result.trace.record(1.0, TraceKind::kReceive, 1, 0);
    result.trace.record(2.0, TraceKind::kReceive, 2, 1);  // node 1 never transmitted
    result.transmitted = {1, 0, 0};
    result.received = {1, 1, 1};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I3"), std::string::npos);
}

TEST(Invariants, DetectsReceiveMaskWithoutTraceEvent) {
    // Mask claims node 1 received but the trace has no receipt for it.
    const Graph g = path_graph(2);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 0);
    result.transmitted = {1, 0};
    result.received = {1, 1};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.describe().find("I5"), std::string::npos);
}

TEST(Invariants, ReportsEveryViolationNotJustFirst) {
    const Graph g = path_graph(3);
    BroadcastResult result;
    result.trace.enable();
    result.trace.record(0.0, TraceKind::kTransmit, 0);
    result.trace.record(1.0, TraceKind::kTransmit, 0);   // I1
    result.trace.record(0.5, TraceKind::kTransmit, 2);   // I2 (never received) + I4
    result.transmitted = {1, 0, 1};
    result.received = {1, 0, 1};
    const auto report = check_invariants(g, 0, result);
    EXPECT_FALSE(report.ok);
    EXPECT_GE(report.violations.size(), 2u);
}

TEST(Invariants, CleanReportDescribes) {
    InvariantReport report;
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.describe(), "all invariants hold");
}

}  // namespace
}  // namespace adhoc
