// Unit tests for edge-list / DOT / SVG output.

#include <gtest/gtest.h>

#include <sstream>

#include "io/dot.hpp"
#include "io/edge_list.hpp"
#include "io/svg.hpp"

namespace adhoc {
namespace {

TEST(EdgeList, RoundTrip) {
    const Graph g = grid_graph(3, 3);
    const std::string text = to_edge_list_string(g);
    const auto parsed = from_edge_list_string(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, g);
}

TEST(EdgeList, CommentsAndBlanksIgnored) {
    const std::string text = "# a comment\n\nn 3\n# another\n0 1\n 1 2\n";
    const auto parsed = from_edge_list_string(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->edge_count(), 2u);
}

TEST(EdgeList, MissingHeaderFails) {
    std::string error;
    EXPECT_FALSE(from_edge_list_string("0 1\n", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(EdgeList, BadEdgeFails) {
    std::string error;
    EXPECT_FALSE(from_edge_list_string("n 3\n0 7\n", &error).has_value());
    EXPECT_NE(error.find("invalid edge"), std::string::npos);
    EXPECT_FALSE(from_edge_list_string("n 3\n1 1\n").has_value());  // self loop
    EXPECT_FALSE(from_edge_list_string("n 3\n0\n").has_value());    // half edge
}

TEST(EdgeList, EmptyInputFails) {
    std::string error;
    EXPECT_FALSE(from_edge_list_string("", &error).has_value());
}

TEST(Dot, ContainsNodesEdgesAndStyling) {
    const Graph g = path_graph(3);
    NodeStyling styling;
    styling.forward = {0, 1, 0};
    styling.source = 0;
    const std::string dot = to_dot_string(g, styling);
    EXPECT_NE(dot.find("graph adhoc"), std::string::npos);
    EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
    EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

TEST(Svg, WellFormedAndMarksClasses) {
    const Graph g = path_graph(3);
    const std::vector<Point2D> pos{{0, 0}, {50, 50}, {100, 100}};
    SvgOptions opts;
    opts.forward = {0, 1, 0};
    opts.source = 0;
    opts.title = "test plot";
    const std::string svg = to_svg_string(g, pos, opts);
    EXPECT_EQ(svg.rfind("<svg", 0), 0u);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    EXPECT_NE(svg.find("test plot"), std::string::npos);
    EXPECT_NE(svg.find("<line"), std::string::npos);    // edges
    EXPECT_NE(svg.find("<rect x="), std::string::npos); // forward node square
    EXPECT_NE(svg.find("fill=\"red\""), std::string::npos);  // source
    EXPECT_NE(svg.find("<path"), std::string::npos);    // non-forward plus mark
}

TEST(Svg, DegeneratePositionsDoNotCrash) {
    const Graph g = path_graph(2);
    const std::vector<Point2D> pos{{5, 5}, {5, 5}};  // zero span
    const std::string svg = to_svg_string(g, pos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Svg, ReceiveTimesFromTrace) {
    Trace trace;
    trace.enable();
    trace.record(0.0, TraceKind::kTransmit, 0);
    trace.record(1.0, TraceKind::kReceive, 1, 0);
    trace.record(2.0, TraceKind::kReceive, 2, 1);
    trace.record(3.0, TraceKind::kReceive, 1, 2);  // duplicate: ignored
    const auto times = receive_times_from_trace(4, trace, 0);
    EXPECT_DOUBLE_EQ(times[0], 0.0);   // source
    EXPECT_DOUBLE_EQ(times[1], 1.0);   // first receipt wins
    EXPECT_DOUBLE_EQ(times[2], 2.0);
    EXPECT_DOUBLE_EQ(times[3], -1.0);  // never reached
}

TEST(Svg, TimelineRendersReachedUnreachedAndForward) {
    const Graph g = path_graph(3);
    const std::vector<Point2D> pos{{0, 0}, {50, 0}, {100, 0}};
    TimelineOptions opts;
    opts.receive_time = {0.0, 1.0, -1.0};
    opts.forward = {1, 0, 0};
    opts.source = 0;
    opts.title = "timeline";
    std::ostringstream out;
    write_svg_timeline(out, g, pos, opts);
    const std::string svg = out.str();
    EXPECT_NE(svg.find("timeline"), std::string::npos);
    EXPECT_NE(svg.find("fill=\"none\""), std::string::npos);      // unreached hollow
    EXPECT_NE(svg.find("stroke=\"black\""), std::string::npos);   // forward outline
    EXPECT_NE(svg.find("rgb("), std::string::npos);               // heat colors
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace adhoc
