// Unit tests for k-hop neighborhoods and Definition-2 local topologies.
//
// The critical behavior is the edge-visibility boundary: G_k(v) contains
// E ∩ (N_{k-1}(v) × N_k(v)) — links between two nodes both exactly k hops
// from v are invisible.  Figure 6(a) of the paper depends on it.

#include "graph/khop.hpp"

#include <gtest/gtest.h>

#include "graph/traversal.hpp"

namespace adhoc {
namespace {

TEST(KHop, ZeroHopIsSelf) {
    const Graph g = path_graph(4);
    const auto n0 = k_hop_nodes(g, 2, 0);
    ASSERT_EQ(n0.size(), 1u);
    EXPECT_EQ(n0[0], 2u);
}

TEST(KHop, NodesWithinK) {
    const Graph g = path_graph(6);  // 0-1-2-3-4-5
    const auto n2 = k_hop_nodes(g, 0, 2);
    EXPECT_EQ(n2, (std::vector<NodeId>{0, 1, 2}));
    const auto n9 = k_hop_nodes(g, 0, 9);
    EXPECT_EQ(n9.size(), 6u);
}

TEST(KHop, TwoHopCoverSetExcludesSelf) {
    const Graph g = star_graph(5);
    const auto cover = two_hop_cover_set(g, 1);  // leaf: center + other leaves
    EXPECT_EQ(cover.size(), 4u);
    for (NodeId y : cover) EXPECT_NE(y, 1u);
}

TEST(KHop, LocalTopologyGlobalWhenKZero) {
    const Graph g = cycle_graph(8);
    const LocalTopology t = local_topology(g, 3, 0);
    EXPECT_EQ(t.graph, g);
    for (char v : t.visible) EXPECT_TRUE(v);
}

TEST(KHop, OneHopViewHasNoNeighborNeighborLinks) {
    // Triangle: from node 0 with 1-hop info, the edge (1,2) is invisible.
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    const LocalTopology t = local_topology(g, 0, 1);
    EXPECT_TRUE(t.graph.has_edge(0, 1));
    EXPECT_TRUE(t.graph.has_edge(0, 2));
    EXPECT_FALSE(t.graph.has_edge(1, 2));  // both exactly 1 hop away
    EXPECT_TRUE(t.visible[1]);
    EXPECT_TRUE(t.visible[2]);
}

TEST(KHop, TwoHopViewSeesNeighborNeighborLinksButNotBoundary) {
    // Paper Figure 6(a) boundary behavior, distilled: 0-1, 0-2, 1-3, 2-4,
    // 3-4.  From node 0 with 2-hop info: nodes {0..4} minus none... 3 and 4
    // are at distance 2; the link (3,4) joins two exactly-2-hop nodes and
    // must be invisible.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 4);
    g.add_edge(3, 4);
    const LocalTopology t = local_topology(g, 0, 2);
    EXPECT_TRUE(t.visible[3]);
    EXPECT_TRUE(t.visible[4]);
    EXPECT_TRUE(t.graph.has_edge(1, 3));   // 1-hop x 2-hop: visible
    EXPECT_FALSE(t.graph.has_edge(3, 4));  // 2-hop x 2-hop: invisible

    // With 3-hop information the link becomes visible.
    const LocalTopology t3 = local_topology(g, 0, 3);
    EXPECT_TRUE(t3.graph.has_edge(3, 4));
}

TEST(KHop, InvisibleNodesAreIsolated) {
    const Graph g = path_graph(6);
    const LocalTopology t = local_topology(g, 0, 2);
    EXPECT_FALSE(t.visible[3]);
    EXPECT_FALSE(t.visible[4]);
    EXPECT_EQ(t.graph.degree(3), 0u);
    EXPECT_EQ(t.graph.degree(4), 0u);
    // Edge (2,3) crosses the horizon: 2 is at dist 2, 3 at dist 3 -> gone.
    EXPECT_FALSE(t.graph.has_edge(2, 3));
}

TEST(KHop, LocalTopologyIsSubgraph) {
    const Graph g = grid_graph(4, 4);
    for (std::size_t k = 1; k <= 4; ++k) {
        const LocalTopology t = local_topology(g, 5, k);
        for (const Edge& e : t.graph.edges()) {
            EXPECT_TRUE(g.has_edge(e.a, e.b));
        }
        EXPECT_LE(t.graph.edge_count(), g.edge_count());
    }
}

TEST(KHop, MonotoneInK) {
    const Graph g = grid_graph(4, 4);
    std::size_t prev_edges = 0;
    for (std::size_t k = 1; k <= 6; ++k) {
        const LocalTopology t = local_topology(g, 0, k);
        EXPECT_GE(t.graph.edge_count(), prev_edges);
        prev_edges = t.graph.edge_count();
    }
    EXPECT_EQ(prev_edges, g.edge_count());  // k=6 covers the whole grid
}

TEST(KHop, CenterIsAlwaysVisible) {
    const Graph g = cycle_graph(5);
    for (NodeId v = 0; v < 5; ++v) {
        const LocalTopology t = local_topology(g, v, 1);
        EXPECT_TRUE(t.visible[v]);
        EXPECT_EQ(t.center, v);
    }
}

}  // namespace
}  // namespace adhoc
