// Unit tests for the shared per-node knowledge base (snooping +
// piggybacked broadcast state, Section 4.3).

#include "sim/node_agent.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

Transmission make_tx(NodeId sender, BroadcastState state) {
    return Transmission{sender, 0.0, std::move(state)};
}

TEST(Knowledge, PrecomputesLocalTopologies) {
    const Graph g = path_graph(5);
    const KnowledgeBase kb(g, 2);
    EXPECT_EQ(kb.hops(), 2u);
    EXPECT_TRUE(kb.at(0).topology().visible[2]);
    EXPECT_FALSE(kb.at(0).topology().visible[3]);
}

TEST(Knowledge, ObserveMarksSenderVisited) {
    const Graph g = path_graph(3);
    KnowledgeBase kb(g, 2);
    const bool first = kb.observe(1, make_tx(0, chain_state({}, 0, {}, 1)));
    EXPECT_TRUE(first);
    EXPECT_TRUE(kb.at(1).visited(0));
    EXPECT_TRUE(kb.at(1).received());
    EXPECT_EQ(kb.at(1).first_sender(), 0u);
}

TEST(Knowledge, SecondReceiptIsNotFirst) {
    const Graph g = path_graph(3);
    KnowledgeBase kb(g, 2);
    EXPECT_TRUE(kb.observe(1, make_tx(0, {})));
    EXPECT_FALSE(kb.observe(1, make_tx(2, {})));
    EXPECT_EQ(kb.at(1).first_sender(), 0u);  // latched
    EXPECT_TRUE(kb.at(1).visited(2));      // but knowledge still grows
    EXPECT_EQ(kb.at(1).receipts(), 2u);
}

TEST(Knowledge, HistoryNodesBecomeVisited) {
    const Graph g = path_graph(4);
    KnowledgeBase kb(g, 2);
    BroadcastState s = chain_state({}, 0, {}, 2);
    s = chain_state(s, 1, {}, 2);  // history: [0, 1]
    kb.observe(2, make_tx(1, s));
    EXPECT_TRUE(kb.at(2).visited(0));  // learned via piggyback
    EXPECT_TRUE(kb.at(2).visited(1));
}

TEST(Knowledge, DesignatedNodesRecorded) {
    const Graph g = star_graph(4);
    KnowledgeBase kb(g, 2);
    kb.observe(1, make_tx(0, chain_state({}, 0, {2, 3}, 1)));
    EXPECT_TRUE(kb.at(1).designated(2));
    EXPECT_TRUE(kb.at(1).designated(3));
    EXPECT_FALSE(kb.at(1).designated_self());
}

TEST(Knowledge, DirectDesignationSetsSelfFlag) {
    const Graph g = star_graph(4);
    KnowledgeBase kb(g, 2);
    kb.observe(2, make_tx(0, chain_state({}, 0, {2}, 1)));
    EXPECT_TRUE(kb.at(2).designated_self());
}

TEST(Knowledge, IndirectDesignationDoesNotObligate) {
    // History contains an older record designating node 3, relayed by
    // node 1: only the *sender's* designation obliges.
    const Graph g = path_graph(4);
    KnowledgeBase kb(g, 2);
    BroadcastState s = chain_state({}, 0, {3}, 2);  // 0 designated 3
    s = chain_state(s, 1, {}, 2);
    kb.observe(3, make_tx(1, s));  // wait: 3 not adjacent to 1 in a path...
    EXPECT_FALSE(kb.at(3).designated_self());
    EXPECT_TRUE(kb.at(3).designated(3));  // still known to be designated
}

TEST(Knowledge, ViewReflectsBroadcastState) {
    const Graph g = path_graph(3);
    KnowledgeBase kb(g, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);
    kb.observe(1, make_tx(0, chain_state({}, 0, {2}, 1)));
    const View view = kb.view_of(1, keys);
    EXPECT_EQ(view.status(0), NodeStatus::kVisited);
    EXPECT_EQ(view.status(2), NodeStatus::kDesignated);
    EXPECT_EQ(view.status(1), NodeStatus::kUnvisited);
}

TEST(Knowledge, ViewClampsInvisibleVisited) {
    const Graph g = path_graph(5);
    KnowledgeBase kb(g, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);
    // Node 0 hears about node 4 via a long history chain even though 4 is
    // outside its 2-hop view.
    BroadcastState s = chain_state({}, 4, {}, 3);
    s = chain_state(s, 2, {}, 3);
    kb.observe(1, make_tx(2, s));
    EXPECT_TRUE(kb.at(1).visited(4));
    const View view = kb.view_of(1, keys);
    EXPECT_EQ(view.status(4), NodeStatus::kInvisible);  // beyond the horizon
}

TEST(Knowledge, VisitedBeatsDesignatedInView) {
    const Graph g = path_graph(3);
    KnowledgeBase kb(g, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);
    kb.observe(1, make_tx(0, chain_state({}, 0, {2}, 1)));  // 2 designated
    kb.observe(1, make_tx(2, chain_state({}, 2, {}, 1)));   // then 2 transmits
    const View view = kb.view_of(1, keys);
    EXPECT_EQ(view.status(2), NodeStatus::kVisited);
}

}  // namespace
}  // namespace adhoc
