// Unit tests for LENWB.

#include "algorithms/lenwb.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Lenwb, TriangleOnlySourceForwards) {
    const LenwbAlgorithm algo;
    const Graph g = complete_graph(3);
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);
}

TEST(Lenwb, PathInteriorForwards) {
    const LenwbAlgorithm algo;
    const Graph g = path_graph(5);
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 4u);
}

TEST(Lenwb, DeliversOnRandomNetworks) {
    Rng rng(89);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const LenwbAlgorithm algo;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng run(i);
        const NodeId src = static_cast<NodeId>(run.index(60));
        const auto result = algo.broadcast(net.graph, src, run);
        EXPECT_TRUE(result.full_delivery) << i;
        EXPECT_TRUE(check_broadcast(net.graph, src, result).ok()) << i;
    }
}

TEST(Lenwb, HigherPriorityNeighborsEnablePruning) {
    // Node 1 receives from 0 (visited).  Its other neighbor 3 connects to
    // 0 via node 2 — but Pr(2, degree scheme) must exceed Pr(1).  Give 2
    // extra degree so LENWB prunes 1.
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    g.add_edge(2, 4);
    g.add_edge(2, 5);  // deg(2)=4 > deg(1)=2
    const LenwbAlgorithm algo;
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_FALSE(result.transmitted[1]);
    EXPECT_TRUE(result.transmitted[2]);
}

TEST(Lenwb, ThreeHopNeverWorseThanTwoHopOnAverage) {
    Rng rng(97);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    const LenwbAlgorithm k2(LenwbConfig{.hops = 2});
    const LenwbAlgorithm k3(LenwbConfig{.hops = 3});
    double t2 = 0, t3 = 0;
    for (int i = 0; i < 20; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        t2 += static_cast<double>(k2.broadcast(net.graph, 0, a).forward_count);
        t3 += static_cast<double>(k3.broadcast(net.graph, 0, b).forward_count);
    }
    EXPECT_LE(t3, t2);
}

TEST(Lenwb, NameMentionsHops) {
    EXPECT_NE(LenwbAlgorithm(LenwbConfig{.hops = 2}).name().find("k=2"), std::string::npos);
}

}  // namespace
}  // namespace adhoc
