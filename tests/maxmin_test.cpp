// Unit tests for the MAX_MIN procedure (Lemma 1), including a
// reconstruction of the paper's Figure 2 example.

#include "core/maxmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/coverage.hpp"
#include "core/view.hpp"

namespace adhoc {
namespace {

TEST(MaxMin, AdjacentEndpointsNeedNoIntermediate) {
    const Graph g = complete_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 0, keys);
    const Priority pv = keys.evaluate(0, NodeStatus::kUnvisited);
    EXPECT_EQ(max_min_node(view, 1, 2, pv), kInvalidNode);
    const auto path = max_min_path(view, 1, 2, pv);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(path->empty());
}

TEST(MaxMin, NoReplacementPathReturnsNullopt) {
    const Graph g = path_graph(3);  // 0-1-2; neighbors of 1 are 0 and 2
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 1, 0, keys);
    const Priority pv = keys.evaluate(1, NodeStatus::kUnvisited);
    EXPECT_EQ(max_min_node(view, 0, 2, pv), kInvalidNode);
    EXPECT_FALSE(max_min_path(view, 0, 2, pv).has_value());
}

TEST(MaxMin, SingleIntermediate) {
    // C4: neighbors 0,2 of node 1 connect through 3.
    const Graph g = cycle_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 1, 0, keys);
    const Priority pv = keys.evaluate(1, NodeStatus::kUnvisited);
    EXPECT_EQ(max_min_node(view, 0, 2, pv), 3u);
    const auto path = max_min_path(view, 0, 2, pv);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, std::vector<NodeId>{3});
}

TEST(MaxMin, PicksWidestBottleneck) {
    // Two routes from 0 to 1 around v=2: via 3 (low) or via 5-4 (higher
    // min).  Widest path bottleneck is min(5,4)=4 > 3.
    Graph g(6);
    g.add_edge(2, 0);
    g.add_edge(2, 1);
    g.add_edge(0, 3);
    g.add_edge(3, 1);
    g.add_edge(0, 5);
    g.add_edge(5, 4);
    g.add_edge(4, 1);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 2, 0, keys);
    const Priority pv = keys.evaluate(2, NodeStatus::kUnvisited);
    EXPECT_EQ(max_min_node(view, 0, 1, pv), 4u);
}

// ---- Figure 2 reconstruction -------------------------------------------
//
// v=2 connects u=0 and w=1.  Routes: u-y-6-4-w (y=9, visited), u-3-w,
// u-5-7-6.  Expected: max-min(u,w)=4, max-min(u,4)=6, max-min(u,6)=y,
// maximal replacement path u-y-6-4-w.
class Figure2 : public ::testing::Test {
  protected:
    Figure2() : g_(10) {
        g_.add_edge(2, 0);  // v-u
        g_.add_edge(2, 1);  // v-w
        g_.add_edge(0, 9);  // u-y
        g_.add_edge(9, 6);
        g_.add_edge(6, 4);
        g_.add_edge(4, 1);  // 4-w
        g_.add_edge(0, 3);
        g_.add_edge(3, 1);
        g_.add_edge(0, 5);
        g_.add_edge(5, 7);
        g_.add_edge(7, 6);
        keys_ = PriorityKeys(g_, PriorityScheme::kId);
        std::vector<char> visited(10, 0);
        visited[9] = 1;  // y is a visited node
        view_ = std::make_unique<View>(
            make_dynamic_view(g_, 2, 0, keys_, visited, std::vector<char>(10, 0)));
        pv_ = keys_.evaluate(2, NodeStatus::kUnvisited);
    }
    Graph g_;
    PriorityKeys keys_{Graph(1), PriorityScheme::kId};
    std::unique_ptr<View> view_;
    Priority pv_;
};

TEST_F(Figure2, MaxMinNodeSequence) {
    EXPECT_EQ(max_min_node(*view_, 0, 1, pv_), 4u);
    EXPECT_EQ(max_min_node(*view_, 0, 4, pv_), 6u);
    EXPECT_EQ(max_min_node(*view_, 0, 6, pv_), 9u);  // the visited node y
}

TEST_F(Figure2, MaximalReplacementPath) {
    const auto path = max_min_path(*view_, 0, 1, pv_);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(*path, (std::vector<NodeId>{9, 6, 4}));
    EXPECT_TRUE(is_replacement_path(*view_, 0, 1, *path, pv_));
}

TEST_F(Figure2, PathNodesAreDistinct) {
    const auto path = max_min_path(*view_, 0, 1, pv_);
    ASSERT_TRUE(path.has_value());
    auto sorted = *path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_F(Figure2, IntermediatesAreForwardOrVisited) {
    // Lemma 1: no node on the maximal replacement path can itself be
    // replaced under the current view.
    const auto path = max_min_path(*view_, 0, 1, pv_);
    ASSERT_TRUE(path.has_value());
    for (NodeId x : *path) {
        if (view_->status(x) == NodeStatus::kVisited) continue;
        EXPECT_FALSE(coverage_condition_holds(*view_, x))
            << "intermediate " << x << " is replaceable";
    }
}

TEST(MaxMin, IsReplacementPathValidation) {
    const Graph g = cycle_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 1, 0, keys);
    const Priority pv = keys.evaluate(1, NodeStatus::kUnvisited);
    EXPECT_TRUE(is_replacement_path(view, 0, 2, {3}, pv));
    EXPECT_FALSE(is_replacement_path(view, 0, 2, {}, pv));   // not adjacent
    EXPECT_FALSE(is_replacement_path(view, 0, 2, {1}, pv));  // wait: 1 is v itself
}

TEST(MaxMin, LowPriorityIntermediateRejected) {
    // Path through a node with priority below the threshold is invalid.
    const Graph g = cycle_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 3, 0, keys);
    const Priority pv = keys.evaluate(3, NodeStatus::kUnvisited);
    EXPECT_FALSE(is_replacement_path(view, 0, 2, {1}, pv));  // Pr(1) < Pr(3)
}

}  // namespace
}  // namespace adhoc
