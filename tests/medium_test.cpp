// Unit tests for the wireless medium model.

#include "sim/medium.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(Medium, DefaultIsLosslessFixedDelay) {
    const Medium medium;
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const auto t = medium.delivery_time(10.0, rng);
        ASSERT_TRUE(t.has_value());
        EXPECT_DOUBLE_EQ(*t, 11.0);
    }
}

TEST(Medium, CustomPropagationDelay) {
    MediumConfig cfg;
    cfg.propagation_delay = 0.25;
    const Medium medium(cfg);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(*medium.delivery_time(4.0, rng), 4.25);
}

TEST(Medium, JitterBounded) {
    MediumConfig cfg;
    cfg.jitter = 2.0;
    const Medium medium(cfg);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto t = medium.delivery_time(0.0, rng);
        ASSERT_TRUE(t.has_value());
        EXPECT_GE(*t, 1.0);
        EXPECT_LT(*t, 3.0);
    }
}

TEST(Medium, TotalLossDropsEverything) {
    MediumConfig cfg;
    cfg.loss_probability = 1.0;
    const Medium medium(cfg);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(medium.delivery_time(0.0, rng).has_value());
    }
}

TEST(Medium, PartialLossApproximatesRate) {
    MediumConfig cfg;
    cfg.loss_probability = 0.25;
    const Medium medium(cfg);
    Rng rng(7);
    int lost = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        if (!medium.delivery_time(0.0, rng).has_value()) ++lost;
    }
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.03);
}

}  // namespace
}  // namespace adhoc
