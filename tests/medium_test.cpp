// Unit tests for the wireless medium model, including the collision
// vulnerability window enforced by the simulator.

#include "sim/medium.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "algorithms/flooding.hpp"
#include "graph/graph.hpp"

namespace adhoc {
namespace {

TEST(Medium, DefaultIsLosslessFixedDelay) {
    const Medium medium;
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const auto t = medium.delivery_time(10.0, rng);
        ASSERT_TRUE(t.has_value());
        EXPECT_DOUBLE_EQ(*t, 11.0);
    }
}

TEST(Medium, CustomPropagationDelay) {
    MediumConfig cfg;
    cfg.propagation_delay = 0.25;
    const Medium medium(cfg);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(*medium.delivery_time(4.0, rng), 4.25);
}

TEST(Medium, JitterBounded) {
    MediumConfig cfg;
    cfg.jitter = 2.0;
    const Medium medium(cfg);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto t = medium.delivery_time(0.0, rng);
        ASSERT_TRUE(t.has_value());
        EXPECT_GE(*t, 1.0);
        EXPECT_LT(*t, 3.0);
    }
}

TEST(Medium, TotalLossDropsEverything) {
    MediumConfig cfg;
    cfg.loss_probability = 1.0;
    const Medium medium(cfg);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(medium.delivery_time(0.0, rng).has_value());
    }
}

TEST(Medium, PartialLossApproximatesRate) {
    MediumConfig cfg;
    cfg.loss_probability = 0.25;
    const Medium medium(cfg);
    Rng rng(7);
    int lost = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        if (!medium.delivery_time(0.0, rng).has_value()) ++lost;
    }
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.03);
}

// ---- Construction validation ------------------------------------------
//
// These used to be silently accepted: a negative jitter made uniform(0,
// jitter) trip its precondition (or worse, sample an empty range), an
// out-of-range or NaN loss probability fed bernoulli_distribution
// undefined input, and a non-positive propagation delay broke the
// arrival-model completeness argument.  The constructor now rejects all
// of them with the offending value in the message.

/// The thrown message must carry the offending value — grep-able triage.
void expect_rejects(const MediumConfig& cfg, const std::string& needle) {
    try {
        Medium medium{cfg};
        FAIL() << "expected invalid_argument mentioning '" << needle << "'";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(MediumValidation, RejectsNegativeJitter) {
    MediumConfig cfg;
    cfg.jitter = -0.5;
    expect_rejects(cfg, "jitter");
    expect_rejects(cfg, "-0.5");
}

TEST(MediumValidation, RejectsNonFiniteJitter) {
    MediumConfig cfg;
    cfg.jitter = std::numeric_limits<double>::quiet_NaN();
    expect_rejects(cfg, "jitter");
    cfg.jitter = std::numeric_limits<double>::infinity();
    expect_rejects(cfg, "jitter");
}

TEST(MediumValidation, RejectsLossOutsideUnitInterval) {
    MediumConfig cfg;
    cfg.loss_probability = -0.1;
    expect_rejects(cfg, "loss_probability");
    cfg.loss_probability = 1.5;
    expect_rejects(cfg, "1.5");
    cfg.loss_probability = std::numeric_limits<double>::quiet_NaN();
    expect_rejects(cfg, "loss_probability");
}

TEST(MediumValidation, RejectsNonPositivePropagationDelay) {
    MediumConfig cfg;
    cfg.propagation_delay = 0.0;
    expect_rejects(cfg, "propagation_delay");
    cfg.propagation_delay = -1.0;
    expect_rejects(cfg, "propagation_delay");
    cfg.propagation_delay = std::numeric_limits<double>::infinity();
    expect_rejects(cfg, "propagation_delay");
}

TEST(MediumValidation, BoundaryValuesAccepted) {
    MediumConfig cfg;
    cfg.jitter = 0.0;
    cfg.loss_probability = 0.0;
    EXPECT_NO_THROW(Medium{cfg});
    cfg.loss_probability = 1.0;
    EXPECT_NO_THROW(Medium{cfg});
}

// ---- Backend selection and SINR parameter validation -------------------

TEST(MediumBackendTest, NameRoundTrip) {
    for (const MediumBackend b : {MediumBackend::kIdeal, MediumBackend::kSinr,
                                  MediumBackend::kUniformPowerGraph}) {
        const auto parsed = medium_backend_from_string(to_string(b));
        ASSERT_TRUE(parsed.has_value()) << to_string(b);
        EXPECT_EQ(*parsed, b);
    }
    EXPECT_FALSE(medium_backend_from_string("rayleigh").has_value());
    EXPECT_FALSE(medium_backend_from_string("").has_value());
}

MediumConfig sinr_config() {
    MediumConfig cfg;
    cfg.backend = MediumBackend::kSinr;
    cfg.positions = {{0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
    cfg.sinr.interference_range = 10.0;
    return cfg;
}

TEST(MediumBackendTest, NonIdealRequiresPositions) {
    MediumConfig cfg = sinr_config();
    cfg.positions.clear();
    expect_rejects(cfg, "positions");
}

TEST(MediumBackendTest, CollisionsExclusiveToIdeal) {
    MediumConfig cfg = sinr_config();
    cfg.collisions = true;
    expect_rejects(cfg, "collisions");
}

TEST(MediumBackendTest, SinrParamRanges) {
    {
        MediumConfig cfg = sinr_config();
        cfg.sinr.alpha = 0.5;  // < 1: signal would grow with distance faster than free space allows
        expect_rejects(cfg, "alpha");
    }
    {
        MediumConfig cfg = sinr_config();
        cfg.sinr.beta = -0.1;
        expect_rejects(cfg, "beta");
    }
    {
        MediumConfig cfg = sinr_config();
        cfg.sinr.noise = std::numeric_limits<double>::quiet_NaN();
        expect_rejects(cfg, "noise");
    }
    {
        MediumConfig cfg = sinr_config();
        cfg.sinr.tx_power = 0.0;
        expect_rejects(cfg, "tx_power");
    }
    {
        MediumConfig cfg = sinr_config();
        cfg.sinr.interference_range = 0.0;
        expect_rejects(cfg, "interference_range");
    }
}

TEST(MediumBackendTest, VulnerabilityWindowMustStayBelowDelay) {
    MediumConfig cfg = sinr_config();
    cfg.sinr.vulnerability_window = cfg.propagation_delay;
    expect_rejects(cfg, "vulnerability_window");
    cfg.sinr.vulnerability_window = -0.1;
    expect_rejects(cfg, "vulnerability_window");
    cfg.sinr.vulnerability_window = cfg.propagation_delay * 0.5;
    EXPECT_NO_THROW(Medium{cfg});
}

TEST(MediumBackendTest, IdealIgnoresSinrBlock) {
    // The SINR block is documented as unvalidated while backend == kIdeal;
    // garbage there must not reject an ideal medium.
    MediumConfig cfg;
    cfg.sinr.alpha = -5.0;
    cfg.sinr.interference_range = 0.0;
    EXPECT_NO_THROW(Medium{cfg});
    EXPECT_EQ(Medium{cfg}.grid(), nullptr);
}

TEST(MediumBackendTest, NonIdealCarriesGridAndSignal) {
    const Medium medium{sinr_config()};
    ASSERT_NE(medium.grid(), nullptr);
    EXPECT_FALSE(medium.ideal());
    // alpha = 3, unit power: signal at distance 1 is 1, at distance 2 is 1/8.
    EXPECT_DOUBLE_EQ(medium.signal(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(medium.signal(0, 2), 1.0 / 8.0);
    // Coincident points clamp to the 1e-9 floor instead of dividing by 0.
    MediumConfig cfg = sinr_config();
    cfg.positions[1] = cfg.positions[0];
    const Medium coincident{cfg};
    EXPECT_TRUE(std::isfinite(coincident.signal(0, 1)));
}

// ---- Collision window (enforced by the simulator's arrival model) -----

/// Diamond: 0-{1,2}-3.  Flooding makes 1 and 2 relay at the same instant,
/// so their copies reach 3 simultaneously — the canonical collision.
Graph diamond() {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    return g;
}

TEST(CollisionWindow, DefaultIsZero) {
    EXPECT_DOUBLE_EQ(MediumConfig{}.collision_window, 0.0);
}

TEST(CollisionWindow, ConstructionRejectsWindowNotBelowDelay) {
    MediumConfig cfg;
    cfg.collision_window = cfg.propagation_delay;  // == delay: rejected
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
    cfg.collision_window = cfg.propagation_delay + 0.5;  // > delay: rejected
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
    cfg.propagation_delay = 0.0;  // forces window >= delay even at 0
    cfg.collision_window = 0.0;
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
}

TEST(CollisionWindow, ConstructionRejectsNegativeWindow) {
    MediumConfig cfg;
    cfg.collision_window = -0.1;
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
}

TEST(CollisionWindow, ConstructionAcceptsWindowJustBelowDelay) {
    MediumConfig cfg;
    cfg.propagation_delay = 1.0;
    cfg.collision_window = 0.999;
    EXPECT_NO_THROW(Medium{cfg});
}

TEST(CollisionWindow, ZeroKeepsExactTieSemantics) {
    // Historical behavior: only bit-identical arrival times collide.
    MediumConfig cfg;
    cfg.collisions = true;
    const FloodingAlgorithm flooding;
    Rng rng(11);
    const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
    EXPECT_FALSE(static_cast<bool>(r.received[3]));  // tie at node 3 destroyed both
    EXPECT_TRUE(static_cast<bool>(r.received[1]));
    EXPECT_TRUE(static_cast<bool>(r.received[2]));
}

TEST(CollisionWindow, JitterDefeatsExactTies) {
    // Two jittered copies are never bit-identical in time, so w=0 lets
    // both through — the bug the window fixes.
    MediumConfig cfg;
    cfg.collisions = true;
    cfg.jitter = 0.3;
    const FloodingAlgorithm flooding;
    int delivered = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
        if (r.received[3]) ++delivered;
    }
    EXPECT_EQ(delivered, 20);
}

TEST(CollisionWindow, WindowCatchesJitteredOverlap) {
    // Jitter keeps the two copies within 0.1 of each other; a 0.5 window
    // (still < propagation delay) must count them as colliding.
    MediumConfig cfg;
    cfg.collisions = true;
    cfg.jitter = 0.1;
    cfg.collision_window = 0.5;
    const FloodingAlgorithm flooding;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
        EXPECT_FALSE(static_cast<bool>(r.received[3])) << "seed " << seed;
    }
}

TEST(CollisionWindow, SeparatedArrivalsUnaffected) {
    // A path delivers one copy per hop: no two arrivals ever share a
    // window, so even a wide window changes nothing.
    MediumConfig cfg;
    cfg.collisions = true;
    cfg.collision_window = 0.9;
    const FloodingAlgorithm flooding;
    Rng rng(3);
    const BroadcastResult r = flooding.broadcast_traced(path_graph(5), 0, rng, cfg);
    EXPECT_TRUE(r.full_delivery);
}

}  // namespace
}  // namespace adhoc
