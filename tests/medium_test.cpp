// Unit tests for the wireless medium model, including the collision
// vulnerability window enforced by the simulator.

#include "sim/medium.hpp"

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "graph/graph.hpp"

namespace adhoc {
namespace {

TEST(Medium, DefaultIsLosslessFixedDelay) {
    const Medium medium;
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const auto t = medium.delivery_time(10.0, rng);
        ASSERT_TRUE(t.has_value());
        EXPECT_DOUBLE_EQ(*t, 11.0);
    }
}

TEST(Medium, CustomPropagationDelay) {
    MediumConfig cfg;
    cfg.propagation_delay = 0.25;
    const Medium medium(cfg);
    Rng rng(1);
    EXPECT_DOUBLE_EQ(*medium.delivery_time(4.0, rng), 4.25);
}

TEST(Medium, JitterBounded) {
    MediumConfig cfg;
    cfg.jitter = 2.0;
    const Medium medium(cfg);
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const auto t = medium.delivery_time(0.0, rng);
        ASSERT_TRUE(t.has_value());
        EXPECT_GE(*t, 1.0);
        EXPECT_LT(*t, 3.0);
    }
}

TEST(Medium, TotalLossDropsEverything) {
    MediumConfig cfg;
    cfg.loss_probability = 1.0;
    const Medium medium(cfg);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(medium.delivery_time(0.0, rng).has_value());
    }
}

TEST(Medium, PartialLossApproximatesRate) {
    MediumConfig cfg;
    cfg.loss_probability = 0.25;
    const Medium medium(cfg);
    Rng rng(7);
    int lost = 0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) {
        if (!medium.delivery_time(0.0, rng).has_value()) ++lost;
    }
    EXPECT_NEAR(static_cast<double>(lost) / n, 0.25, 0.03);
}

// ---- Collision window (enforced by the simulator's arrival model) -----

/// Diamond: 0-{1,2}-3.  Flooding makes 1 and 2 relay at the same instant,
/// so their copies reach 3 simultaneously — the canonical collision.
Graph diamond() {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    return g;
}

TEST(CollisionWindow, DefaultIsZero) {
    EXPECT_DOUBLE_EQ(MediumConfig{}.collision_window, 0.0);
}

TEST(CollisionWindow, ConstructionRejectsWindowNotBelowDelay) {
    MediumConfig cfg;
    cfg.collision_window = cfg.propagation_delay;  // == delay: rejected
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
    cfg.collision_window = cfg.propagation_delay + 0.5;  // > delay: rejected
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
    cfg.propagation_delay = 0.0;  // forces window >= delay even at 0
    cfg.collision_window = 0.0;
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
}

TEST(CollisionWindow, ConstructionRejectsNegativeWindow) {
    MediumConfig cfg;
    cfg.collision_window = -0.1;
    EXPECT_THROW(Medium{cfg}, std::invalid_argument);
}

TEST(CollisionWindow, ConstructionAcceptsWindowJustBelowDelay) {
    MediumConfig cfg;
    cfg.propagation_delay = 1.0;
    cfg.collision_window = 0.999;
    EXPECT_NO_THROW(Medium{cfg});
}

TEST(CollisionWindow, ZeroKeepsExactTieSemantics) {
    // Historical behavior: only bit-identical arrival times collide.
    MediumConfig cfg;
    cfg.collisions = true;
    const FloodingAlgorithm flooding;
    Rng rng(11);
    const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
    EXPECT_FALSE(static_cast<bool>(r.received[3]));  // tie at node 3 destroyed both
    EXPECT_TRUE(static_cast<bool>(r.received[1]));
    EXPECT_TRUE(static_cast<bool>(r.received[2]));
}

TEST(CollisionWindow, JitterDefeatsExactTies) {
    // Two jittered copies are never bit-identical in time, so w=0 lets
    // both through — the bug the window fixes.
    MediumConfig cfg;
    cfg.collisions = true;
    cfg.jitter = 0.3;
    const FloodingAlgorithm flooding;
    int delivered = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
        if (r.received[3]) ++delivered;
    }
    EXPECT_EQ(delivered, 20);
}

TEST(CollisionWindow, WindowCatchesJitteredOverlap) {
    // Jitter keeps the two copies within 0.1 of each other; a 0.5 window
    // (still < propagation delay) must count them as colliding.
    MediumConfig cfg;
    cfg.collisions = true;
    cfg.jitter = 0.1;
    cfg.collision_window = 0.5;
    const FloodingAlgorithm flooding;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        Rng rng(seed);
        const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
        EXPECT_FALSE(static_cast<bool>(r.received[3])) << "seed " << seed;
    }
}

TEST(CollisionWindow, SeparatedArrivalsUnaffected) {
    // A path delivers one copy per hop: no two arrivals ever share a
    // window, so even a wide window changes nothing.
    MediumConfig cfg;
    cfg.collisions = true;
    cfg.collision_window = 0.9;
    const FloodingAlgorithm flooding;
    Rng rng(3);
    const BroadcastResult r = flooding.broadcast_traced(path_graph(5), 0, rng, cfg);
    EXPECT_TRUE(r.full_delivery);
}

}  // namespace
}  // namespace adhoc
