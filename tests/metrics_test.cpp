// Unit tests for topology metrics (ncr, degrees, articulation points).

#include "graph/metrics.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(Metrics, NcrOfStarCenterIsOne) {
    const Graph g = star_graph(5);
    EXPECT_DOUBLE_EQ(neighborhood_connectivity_ratio(g, 0), 1.0);  // no pair linked
}

TEST(Metrics, NcrOfCompleteGraphIsZero) {
    const Graph g = complete_graph(5);
    for (NodeId v = 0; v < 5; ++v) {
        EXPECT_DOUBLE_EQ(neighborhood_connectivity_ratio(g, v), 0.0);
    }
}

TEST(Metrics, NcrDegenerateNodes) {
    const Graph g = path_graph(3);
    EXPECT_DOUBLE_EQ(neighborhood_connectivity_ratio(g, 0), 0.0);  // leaf
    EXPECT_DOUBLE_EQ(neighborhood_connectivity_ratio(g, 1), 1.0);  // open middle
}

TEST(Metrics, NcrPartial) {
    // Node 0 has neighbors 1,2,3; only (1,2) linked: ncr = 1 - 1/3.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(1, 2);
    EXPECT_NEAR(neighborhood_connectivity_ratio(g, 0), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, AllNcrMatchesPerNode) {
    const Graph g = grid_graph(3, 3);
    const auto ncr = all_ncr(g);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        EXPECT_DOUBLE_EQ(ncr[v], neighborhood_connectivity_ratio(g, v));
    }
}

TEST(Metrics, DegreeStats) {
    const Graph g = star_graph(5);
    EXPECT_DOUBLE_EQ(average_degree(g), 2.0 * 4 / 5);
    EXPECT_EQ(max_degree(g), 4u);
    EXPECT_EQ(min_degree(g), 1u);
    EXPECT_DOUBLE_EQ(average_degree(Graph{}), 0.0);
}

TEST(Metrics, ArticulationPointsOfPath) {
    const Graph g = path_graph(5);
    const auto cut = articulation_points(g);
    EXPECT_FALSE(cut[0]);
    EXPECT_TRUE(cut[1]);
    EXPECT_TRUE(cut[2]);
    EXPECT_TRUE(cut[3]);
    EXPECT_FALSE(cut[4]);
}

TEST(Metrics, ArticulationPointsOfCycleNone) {
    const Graph g = cycle_graph(6);
    for (char c : articulation_points(g)) EXPECT_FALSE(c);
}

TEST(Metrics, ArticulationPointBridgeBetweenTriangles) {
    // Two triangles joined at node 2: 0-1-2 and 2-3-4.
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(2, 4);
    const auto cut = articulation_points(g);
    EXPECT_TRUE(cut[2]);
    EXPECT_FALSE(cut[0]);
    EXPECT_FALSE(cut[1]);
    EXPECT_FALSE(cut[3]);
    EXPECT_FALSE(cut[4]);
}

TEST(Metrics, ArticulationStarCenter) {
    const Graph g = star_graph(6);
    const auto cut = articulation_points(g);
    EXPECT_TRUE(cut[0]);
    for (NodeId v = 1; v < 6; ++v) EXPECT_FALSE(cut[v]);
}

TEST(Metrics, ClusteringCoefficient) {
    EXPECT_DOUBLE_EQ(clustering_coefficient(complete_graph(4)), 1.0);
    EXPECT_DOUBLE_EQ(clustering_coefficient(star_graph(5)), 0.0);
    EXPECT_DOUBLE_EQ(clustering_coefficient(path_graph(4)), 0.0);
}

}  // namespace
}  // namespace adhoc
