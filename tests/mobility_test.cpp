// Unit tests for random-waypoint mobility and stale-view broadcasts.

#include "sim/mobility.hpp"

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "runner/seed.hpp"

namespace adhoc {
namespace {

TEST(RandomWaypoint, NodesStayInsideArea) {
    Rng rng(1);
    WaypointParams params;
    params.area_side = 50.0;
    RandomWaypoint model(30, params, rng);
    for (int step = 0; step < 50; ++step) {
        model.step(1.0, rng);
        for (const Point2D& p : model.positions()) {
            EXPECT_GE(p.x, 0.0);
            EXPECT_LE(p.x, 50.0);
            EXPECT_GE(p.y, 0.0);
            EXPECT_LE(p.y, 50.0);
        }
    }
}

TEST(RandomWaypoint, NodesActuallyMove) {
    Rng rng(2);
    RandomWaypoint model(10, {}, rng);
    const auto before = model.positions();
    model.step(5.0, rng);
    const auto after = model.positions();
    std::size_t moved = 0;
    for (std::size_t i = 0; i < before.size(); ++i) {
        if (distance(before[i], after[i]) > 1e-9) ++moved;
    }
    EXPECT_EQ(moved, before.size());
}

TEST(RandomWaypoint, SpeedBoundsRespected) {
    Rng rng(3);
    WaypointParams params;
    params.min_speed = 2.0;
    params.max_speed = 4.0;
    RandomWaypoint model(20, params, rng);
    const auto before = model.positions();
    const double dt = 0.5;
    model.step(dt, rng);
    const auto after = model.positions();
    for (std::size_t i = 0; i < before.size(); ++i) {
        // Waypoint turns can shorten net displacement but never exceed
        // max_speed * dt.
        EXPECT_LE(distance(before[i], after[i]), params.max_speed * dt + 1e-9);
    }
}

TEST(RandomWaypoint, FromPositionsStartsWhereTold) {
    Rng rng(4);
    const std::vector<Point2D> start{{1, 2}, {3, 4}, {5, 6}};
    const auto model = RandomWaypoint::from_positions(start, {}, rng);
    EXPECT_EQ(model.positions(), start);
}

TEST(RandomWaypoint, PauseDelaysMotion) {
    Rng rng(5);
    WaypointParams params;
    params.pause = 100.0;  // long initial pause at the first waypoint...
    // Initial states are mid-flight (no pause yet), so step to a waypoint
    // first, then observe a pause window.  Simpler deterministic check:
    // with pause == step the net motion is strictly less than pause-free.
    RandomWaypoint paused(15, params, rng);
    Rng rng2(5);
    RandomWaypoint moving(15, WaypointParams{}, rng2);
    double paused_dist = 0, moving_dist = 0;
    const auto p0 = paused.positions();
    const auto m0 = moving.positions();
    for (int i = 0; i < 40; ++i) {
        paused.step(1.0, rng);
        moving.step(1.0, rng2);
    }
    const auto p1 = paused.positions();
    const auto m1 = moving.positions();
    for (std::size_t i = 0; i < p0.size(); ++i) {
        paused_dist += distance(p0[i], p1[i]);
        moving_dist += distance(m0[i], m1[i]);
    }
    EXPECT_LE(paused_dist, moving_dist);
}

TEST(StaleView, ZeroStalenessBehavesLikeStatic) {
    const GenericBroadcast algo(generic_fr_config(2));
    UnitDiskParams net;
    net.node_count = 50;
    net.average_degree = 8.0;
    Rng rng(11);
    const auto result = stale_view_broadcast(algo, net, {}, /*staleness=*/0.0, 0, rng);
    EXPECT_DOUBLE_EQ(result.delivery_ratio, 1.0);
    EXPECT_TRUE(result.actual_connected);
}

TEST(StaleView, DeliveryDegradesWithStaleness) {
    const GenericBroadcast algo(generic_fr_config(2));
    UnitDiskParams net;
    net.node_count = 60;
    net.average_degree = 8.0;
    WaypointParams move;
    move.max_speed = 10.0;

    auto mean_delivery = [&](double staleness) {
        double total = 0;
        const std::uint64_t runs = 20;
        for (std::uint64_t i = 0; i < runs; ++i) {
            Rng rng(runner::derive_run_seed(100, net.node_count, staleness, i));
            total += stale_view_broadcast(algo, net, move, staleness, 0, rng).delivery_ratio;
        }
        return total / static_cast<double>(runs);
    };
    const double fresh = mean_delivery(0.0);
    const double stale = mean_delivery(8.0);
    EXPECT_DOUBLE_EQ(fresh, 1.0);
    EXPECT_LT(stale, fresh);
}

TEST(StaleView, RedundancyBuysBackDelivery) {
    // Paper Section 1: mobility is balanced by extra redundancy — flooding
    // must beat aggressive pruning under stale views.
    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2));
    UnitDiskParams net;
    net.node_count = 60;
    net.average_degree = 8.0;
    WaypointParams move;
    move.max_speed = 10.0;

    double flood_total = 0, generic_total = 0;
    const std::uint64_t runs = 25;
    for (std::uint64_t i = 0; i < runs; ++i) {
        // Same derived seed for both algorithms: paired comparison on the
        // same mobility trajectory and topology.
        const std::uint64_t seed = runner::derive_run_seed(500, net.node_count, 6.0, i);
        Rng a(seed);
        Rng b(seed);
        flood_total += stale_view_broadcast(flooding, net, move, 6.0, 0, a).delivery_ratio;
        generic_total += stale_view_broadcast(generic, net, move, 6.0, 0, b).delivery_ratio;
    }
    EXPECT_GE(flood_total, generic_total);
}

}  // namespace
}  // namespace adhoc
