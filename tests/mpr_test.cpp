// Unit tests for multipoint relays.

#include "algorithms/mpr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/traversal.hpp"
#include "graph/unit_disk.hpp"

namespace adhoc {
namespace {

TEST(Mpr, MprSetsCoverAllTwoHopNeighbors) {
    Rng rng(5);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    const auto mpr = compute_mpr_sets(net.graph);
    for (NodeId v = 0; v < net.graph.node_count(); ++v) {
        const auto dist = bfs_distances(net.graph, v);
        for (NodeId y = 0; y < net.graph.node_count(); ++y) {
            if (dist[y] != 2) continue;
            bool covered = false;
            for (NodeId m : mpr[v]) {
                if (net.graph.has_edge(m, y)) {
                    covered = true;
                    break;
                }
            }
            EXPECT_TRUE(covered) << "node " << y << " uncovered by MPR(" << v << ")";
        }
    }
}

TEST(Mpr, MprsAreNeighbors) {
    const Graph g = grid_graph(4, 4);
    const auto mpr = compute_mpr_sets(g);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        for (NodeId m : mpr[v]) EXPECT_TRUE(g.has_edge(v, m));
    }
}

TEST(Mpr, NoTwoHopNeighborsMeansNoMprs) {
    const Graph g = star_graph(5);
    const auto mpr = compute_mpr_sets(g);
    EXPECT_TRUE(mpr[0].empty());  // center: everything within 1 hop
    // Leaves designate the center to reach the other leaves.
    for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(mpr[v], std::vector<NodeId>{0});
}

TEST(Mpr, PathMprChain) {
    const Graph g = path_graph(5);
    const auto mpr = compute_mpr_sets(g);
    EXPECT_EQ(mpr[0], std::vector<NodeId>{1});
    auto m2 = mpr[2];
    std::sort(m2.begin(), m2.end());
    EXPECT_EQ(m2, (std::vector<NodeId>{1, 3}));
}

TEST(Mpr, BroadcastDeliversEverywhere) {
    const MprAlgorithm algo;
    const Graph g = grid_graph(5, 5);
    Rng rng(1);
    for (NodeId src : {0u, 6u, 12u, 24u}) {
        const auto result = algo.broadcast(g, src, rng);
        EXPECT_TRUE(result.full_delivery) << "src " << src;
    }
}

TEST(Mpr, DeliversOnRandomNetworks) {
    Rng rng(53);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const MprAlgorithm algo;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng run(i);
        const auto result =
            algo.broadcast(net.graph, static_cast<NodeId>(run.index(60)), run);
        EXPECT_TRUE(result.full_delivery) << "iteration " << i;
    }
}

TEST(Mpr, FewerForwardsThanFlooding) {
    Rng rng(59);
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 10.0;
    const auto net = generate_network_checked(params, rng);
    const MprAlgorithm algo;
    Rng run(1);
    const auto result = algo.broadcast(net.graph, 0, run);
    EXPECT_LT(result.forward_count, net.graph.node_count());
}

TEST(Mpr, NonDesignatedFirstSenderSuppressesForwarding) {
    // Triangle + pendant: 0-1, 0-2, 1-2, 2-3.  From source 0, node 1 is an
    // MPR of nobody relevant... concretely verify a node whose first copy
    // came from a non-selector stays silent.
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    const auto mpr = compute_mpr_sets(g);
    // MPR(0) must be {2} (2 covers 3).
    EXPECT_EQ(mpr[0], std::vector<NodeId>{2});
    const MprAlgorithm algo;
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_FALSE(result.transmitted[1]);  // not designated by 0
    EXPECT_TRUE(result.transmitted[2]);
}

}  // namespace
}  // namespace adhoc
