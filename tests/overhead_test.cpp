// Unit tests for the overhead cost model (Sections 4.3-4.4).

#include "stats/overhead.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(Overhead, HelloRoundsMatchPaperTable) {
    // 2-hop + id = 2 rounds; +degree = 3; +ncr = 4 (paper: k-hop info plus
    // degree needs (k+1)-hop, plus ncr needs (k+2)-hop).
    EXPECT_EQ(information_cost(2, PriorityScheme::kId, Timing::kStatic).hello_rounds, 2u);
    EXPECT_EQ(information_cost(2, PriorityScheme::kDegree, Timing::kStatic).hello_rounds, 3u);
    EXPECT_EQ(information_cost(2, PriorityScheme::kNcr, Timing::kStatic).hello_rounds, 4u);
    EXPECT_EQ(information_cost(3, PriorityScheme::kNcr, Timing::kStatic).hello_rounds, 5u);
}

TEST(Overhead, DynamicTimingsRecompute) {
    EXPECT_FALSE(information_cost(2, PriorityScheme::kId, Timing::kStatic)
                     .per_broadcast_recompute);
    EXPECT_TRUE(information_cost(2, PriorityScheme::kId, Timing::kFirstReceipt)
                    .per_broadcast_recompute);
    EXPECT_TRUE(information_cost(2, PriorityScheme::kId, Timing::kRandomBackoff)
                    .per_broadcast_recompute);
}

TEST(Overhead, PiggybackBytesCountRecordsAndDesignations) {
    BroadcastState state;
    state.history = {{1, {2, 3}}, {4, {}}};
    // record 1: 4 (id) + 2*4 (designated) + 1 (len) = 13
    // record 4: 4 + 0 + 1 = 5
    EXPECT_EQ(piggyback_bytes(state), 18u);
}

TEST(Overhead, TdpTwoHopPayloadCounted) {
    BroadcastState state;
    state.sender_two_hop = {1, 2, 3, 4, 5};
    EXPECT_EQ(piggyback_bytes(state), 20u);
}

TEST(Overhead, EmptyStateIsFree) {
    EXPECT_EQ(piggyback_bytes(BroadcastState{}), 0u);
}

TEST(Overhead, EstimateMatchesExactForUniformRecords) {
    BroadcastState state;
    state.history = {{1, {2}}, {3, {4}}};
    EXPECT_DOUBLE_EQ(estimated_piggyback_bytes(2, 1.0),
                     static_cast<double>(piggyback_bytes(state)));
}

TEST(Overhead, EstimateIncludesTwoHop) {
    EXPECT_DOUBLE_EQ(estimated_piggyback_bytes(0, 0.0, 10), 40.0);
}

}  // namespace
}  // namespace adhoc
