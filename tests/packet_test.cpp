// Unit tests for broadcast-state chaining (piggybacked history, Section 5).

#include "sim/packet.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(Packet, ChainFromEmptyAppendsSelf) {
    const BroadcastState out = chain_state({}, 7, {1, 2}, /*h=*/2);
    ASSERT_EQ(out.history.size(), 1u);
    EXPECT_EQ(out.history[0].node, 7u);
    EXPECT_EQ(out.history[0].designated, (std::vector<NodeId>{1, 2}));
}

TEST(Packet, ChainKeepsMostRecentH) {
    BroadcastState s;
    s.history = {{1, {}}, {2, {}}, {3, {}}};
    const BroadcastState out = chain_state(s, 4, {}, /*h=*/2);
    ASSERT_EQ(out.history.size(), 2u);
    EXPECT_EQ(out.history[0].node, 3u);  // most recent inherited
    EXPECT_EQ(out.history[1].node, 4u);  // self is last
}

TEST(Packet, HistoryDepthOneCarriesOnlySelf) {
    BroadcastState s;
    s.history = {{1, {9}}};
    const BroadcastState out = chain_state(s, 2, {5}, /*h=*/1);
    ASSERT_EQ(out.history.size(), 1u);
    EXPECT_EQ(out.history[0].node, 2u);
    EXPECT_EQ(out.history[0].designated, std::vector<NodeId>{5});
}

TEST(Packet, HistoryDepthZeroCarriesNothing) {
    BroadcastState s;
    s.history = {{1, {}}};
    const BroadcastState out = chain_state(s, 2, {5}, /*h=*/0);
    EXPECT_TRUE(out.history.empty());
}

TEST(Packet, LongChainSlidesWindow) {
    BroadcastState s;
    for (NodeId v = 0; v < 5; ++v) s = chain_state(s, v, {}, /*h=*/3);
    ASSERT_EQ(s.history.size(), 3u);
    EXPECT_EQ(s.history[0].node, 2u);
    EXPECT_EQ(s.history[1].node, 3u);
    EXPECT_EQ(s.history[2].node, 4u);
}

TEST(Packet, ChainDoesNotCarrySenderTwoHop) {
    BroadcastState s;
    s.sender_two_hop = {1, 2, 3};
    const BroadcastState out = chain_state(s, 9, {}, /*h=*/2);
    EXPECT_TRUE(out.sender_two_hop.empty());  // TDP re-fills it per hop
}

}  // namespace
}  // namespace adhoc
