// Figure-level reproductions on the paper's own toy examples and a
// Figure-9-style 100-node sample network.

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

// ---- Figure 1: three-node network --------------------------------------

TEST(PaperFigure1, BroadcastFromVNeedsOnlyOneTransmission) {
    // "the last two transmissions are unnecessary": with pruning, v's
    // transmission alone covers u and w.
    Graph g(3);
    g.add_edge(0, 1);  // u-v
    g.add_edge(1, 2);  // v-w
    g.add_edge(0, 2);  // u-w
    const GenericBroadcast algo(generic_fr_config(2));
    Rng rng(1);
    const auto result = algo.broadcast(g, 1, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);  // flooding would use 3
}

// ---- Section 2's static example: w alone forms the forward set ---------

TEST(PaperSection2, StaticTriangleKeepsHighestId) {
    // "Suppose w (the highest id among the three) is selected."  On a
    // complete graph the generic condition prunes everyone; the paper's
    // narrative picks w as tie-break survivor for the marking-based
    // algorithms.  Check the generic static sets for both interpretations:
    Graph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const auto fwd = generic_static_forward_set(g, 2, keys, {});
    // Complete graph: no forward node needed at all (Theorem 1 remark).
    EXPECT_EQ(set_size(fwd), 0u);
}

// ---- Figure 9: 100-node sample, static vs FR vs FRB ---------------------

class Figure9 : public ::testing::Test {
  protected:
    static UnitDiskNetwork make_network() {
        Rng rng(2003);  // fixed: the repository's "sample" network
        UnitDiskParams params;
        params.node_count = 100;
        params.average_degree = 6.0;
        return generate_network_checked(params, rng);
    }

    static std::size_t forwards(const UnitDiskNetwork& net, const GenericConfig& cfg,
                                std::uint64_t seed = 9) {
        const GenericBroadcast algo(cfg);
        Rng rng(seed);
        const auto result = algo.broadcast(net.graph, 0, rng);
        EXPECT_TRUE(result.full_delivery);
        return result.forward_count;
    }
};

TEST_F(Figure9, StaticFrFrbOrderingHolds2Hop) {
    const auto net = make_network();
    // Average FRB over seeds (it is randomized).
    double frb = 0;
    for (std::uint64_t s = 1; s <= 5; ++s) {
        frb += static_cast<double>(forwards(net, generic_frb_config(2), s));
    }
    frb /= 5.0;
    const auto stat = forwards(net, generic_static_config(2, PriorityScheme::kId));
    const auto fr = forwards(net, generic_fr_config(2, PriorityScheme::kId));
    EXPECT_LE(fr, stat);
    EXPECT_LE(frb, static_cast<double>(fr) + 0.5);
    // Magnitudes: paper reports 49/45/41 on its sample network; ours should
    // land in the same regime (half-ish of 100 nodes, not 10, not 90).
    EXPECT_GT(stat, 25u);
    EXPECT_LT(stat, 70u);
}

TEST_F(Figure9, ThreeHopBeatsTwoHop) {
    const auto net = make_network();
    EXPECT_LE(forwards(net, generic_fr_config(3, PriorityScheme::kId)),
              forwards(net, generic_fr_config(2, PriorityScheme::kId)));
    EXPECT_LE(forwards(net, generic_static_config(3, PriorityScheme::kId)),
              forwards(net, generic_static_config(2, PriorityScheme::kId)));
}

TEST_F(Figure9, AllVariantsProduceCds) {
    const auto net = make_network();
    for (const GenericConfig& cfg :
         {generic_static_config(2, PriorityScheme::kId), generic_fr_config(2),
          generic_frb_config(2), generic_frbd_config(2)}) {
        const GenericBroadcast algo(cfg);
        Rng rng(3);
        const auto result = algo.broadcast(net.graph, 0, rng);
        EXPECT_TRUE(check_broadcast(net.graph, 0, result).ok()) << cfg.summary();
    }
}

}  // namespace
}  // namespace adhoc
