// Unit tests for the priority total order (paper Section 2 and 4.4).

#include "core/priority.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"

namespace adhoc {
namespace {

TEST(Priority, StatusDominatesEverything) {
    // A visited node outranks any unvisited node regardless of keys.
    const Priority visited{NodeStatus::kVisited, 0.0, 0.0, 0};
    const Priority unvisited{NodeStatus::kUnvisited, 99.0, 99.0, 999};
    EXPECT_GT(visited, unvisited);
}

TEST(Priority, StatusLattice) {
    const Priority inv{NodeStatus::kInvisible, 0, 0, 5};
    const Priority unv{NodeStatus::kUnvisited, 0, 0, 5};
    const Priority des{NodeStatus::kDesignated, 0, 0, 5};
    const Priority vis{NodeStatus::kVisited, 0, 0, 5};
    EXPECT_LT(inv, unv);
    EXPECT_LT(unv, des);  // S = 1 < 1.5
    EXPECT_LT(des, vis);  // S = 1.5 < 2
}

TEST(Priority, KeyThenIdTiebreak) {
    const Priority a{NodeStatus::kUnvisited, 3.0, 0.0, 10};
    const Priority b{NodeStatus::kUnvisited, 2.0, 5.0, 1};
    EXPECT_GT(a, b);  // key1 decides before key2/id
    const Priority c{NodeStatus::kUnvisited, 3.0, 0.0, 11};
    EXPECT_GT(c, a);  // id tiebreak
}

TEST(Priority, PaperFigure1Ordering) {
    // (1, w) > (1, v) and (2, v) > (1, w) with ids v < w.
    const NodeId v = 1, w = 2;
    const Priority p1v{NodeStatus::kUnvisited, 0, 0, v};
    const Priority p1w{NodeStatus::kUnvisited, 0, 0, w};
    const Priority p2v{NodeStatus::kVisited, 0, 0, v};
    EXPECT_GT(p1w, p1v);
    EXPECT_GT(p2v, p1w);
}

TEST(Priority, DistinctNodesNeverEqual) {
    const Priority a{NodeStatus::kUnvisited, 1.0, 1.0, 3};
    const Priority b{NodeStatus::kUnvisited, 1.0, 1.0, 4};
    EXPECT_NE(a, b);
    EXPECT_TRUE(a < b || b < a);
}

TEST(PriorityKeys, IdSchemeUsesOnlyIds) {
    const Graph g = star_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const auto p0 = keys.evaluate(0, NodeStatus::kUnvisited);
    const auto p3 = keys.evaluate(3, NodeStatus::kUnvisited);
    EXPECT_LT(p0, p3);  // center has highest degree but lowest id
    EXPECT_EQ(keys.extra_rounds(), 0u);
}

TEST(PriorityKeys, DegreeSchemeRanksByDegree) {
    const Graph g = star_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kDegree);
    const auto center = keys.evaluate(0, NodeStatus::kUnvisited);
    const auto leaf = keys.evaluate(3, NodeStatus::kUnvisited);
    EXPECT_GT(center, leaf);
    EXPECT_EQ(keys.extra_rounds(), 1u);
}

TEST(PriorityKeys, DegreeTieBrokenById) {
    const Graph g = cycle_graph(4);  // all degree 2
    const PriorityKeys keys(g, PriorityScheme::kDegree);
    EXPECT_LT(keys.evaluate(0, NodeStatus::kUnvisited), keys.evaluate(3, NodeStatus::kUnvisited));
}

TEST(PriorityKeys, NcrSchemeUsesNcrThenDegree) {
    // Node 0: star center (ncr 1, deg 3); node 4: triangle member (ncr 0).
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(4, 5);
    g.add_edge(5, 6);
    g.add_edge(4, 6);
    const PriorityKeys keys(g, PriorityScheme::kNcr);
    EXPECT_GT(keys.evaluate(0, NodeStatus::kUnvisited), keys.evaluate(4, NodeStatus::kUnvisited));
    EXPECT_EQ(keys.extra_rounds(), 2u);
}

TEST(PriorityKeys, NcrEqualFallsBackToDegreeThenId) {
    const Graph g = path_graph(4);  // ends ncr 0 deg 1; middles ncr 1 deg 2
    const PriorityKeys keys(g, PriorityScheme::kNcr);
    EXPECT_GT(keys.evaluate(1, NodeStatus::kUnvisited), keys.evaluate(0, NodeStatus::kUnvisited));
    EXPECT_GT(keys.evaluate(2, NodeStatus::kUnvisited), keys.evaluate(1, NodeStatus::kUnvisited));
}

TEST(PriorityKeys, StatusOverridesKeysInEvaluation) {
    const Graph g = star_graph(4);
    const PriorityKeys keys(g, PriorityScheme::kDegree);
    EXPECT_GT(keys.evaluate(3, NodeStatus::kVisited), keys.evaluate(0, NodeStatus::kUnvisited));
}

TEST(Priority, ToStringCoverage) {
    EXPECT_EQ(to_string(PriorityScheme::kId), "ID");
    EXPECT_EQ(to_string(PriorityScheme::kDegree), "Degree");
    EXPECT_EQ(to_string(PriorityScheme::kNcr), "NCR");
    EXPECT_EQ(to_string(NodeStatus::kVisited), "visited");
    EXPECT_EQ(to_string(NodeStatus::kDesignated), "designated");
}

}  // namespace
}  // namespace adhoc
