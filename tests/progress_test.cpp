// Tests for the progress meter: style resolution, plain-mode output that
// stays log-friendly (no \r smearing), and ETA guarding.

#include "runner/progress.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace adhoc::runner {
namespace {

TEST(Progress, AutoOnNonTerminalStreamIsPlain) {
    // A stringstream has no fd; kAuto must not pick the \r-overwrite style.
    std::ostringstream out;
    ProgressMeter meter(out, "test");
    EXPECT_EQ(meter.style(), ProgressStyle::kPlain);
}

TEST(Progress, PlainModeEmitsNewlineTerminatedLinesWithoutControlCodes) {
    std::ostringstream out;
    ProgressMeter meter(out, "fig test", ProgressStyle::kPlain);
    meter.update(1, 4, 100);
    meter.update(4, 4, 400);  // completion bypasses the throttle
    meter.finish();
    const std::string text = out.str();
    EXPECT_EQ(text.find('\r'), std::string::npos);
    EXPECT_EQ(text.find('\x1b'), std::string::npos);
    EXPECT_NE(text.find("[fig test] cell 1/4, 100 runs"), std::string::npos);
    EXPECT_NE(text.find("cell 4/4, 400 runs"), std::string::npos);
    EXPECT_TRUE(!text.empty() && text.back() == '\n');
}

TEST(Progress, InteractiveModeOverwritesAndErases) {
    std::ostringstream out;
    ProgressMeter meter(out, "fig", ProgressStyle::kInteractive);
    meter.update(2, 4, 10);
    meter.finish();
    const std::string text = out.str();
    EXPECT_NE(text.find('\r'), std::string::npos);
    EXPECT_NE(text.find("\x1b[K"), std::string::npos);
    EXPECT_TRUE(!text.empty() && text.back() == '\n');
}

TEST(Progress, PlainThrottleDropsRapidIntermediateUpdates) {
    std::ostringstream out;
    ProgressMeter meter(out, "fig", ProgressStyle::kPlain);
    for (std::size_t i = 1; i <= 50; ++i) meter.update(1, 4, i);
    const std::string text = out.str();
    // First update prints, the rapid rest are throttled (~2 s window).
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
}

TEST(Progress, NoEtaWithoutCompletedCells) {
    // cells_done == 0: nothing to extrapolate from, so no ETA (the old
    // formula divided by zero here only because a guard happened to
    // short-circuit; keep it locked in).
    std::ostringstream out;
    ProgressMeter meter(out, "fig", ProgressStyle::kPlain);
    meter.update(0, 4, 3);
    EXPECT_EQ(out.str().find("ETA"), std::string::npos);
}

TEST(Progress, NoEtaImmediatelyAfterStart) {
    // Progress in the first instants yields a meaningless extrapolation;
    // the elapsed-time floor suppresses it.
    std::ostringstream out;
    ProgressMeter meter(out, "fig", ProgressStyle::kPlain);
    meter.update(1, 4, 10);
    EXPECT_EQ(out.str().find("ETA"), std::string::npos);
}

TEST(Progress, FinishWithoutUpdatesPrintsNothing) {
    std::ostringstream out;
    ProgressMeter meter(out, "fig", ProgressStyle::kPlain);
    meter.finish();
    EXPECT_TRUE(out.str().empty());
}

TEST(Progress, FinishRendersPendingThrottledState) {
    std::ostringstream out;
    ProgressMeter meter(out, "fig", ProgressStyle::kPlain);
    meter.update(1, 4, 10);   // prints
    meter.update(2, 4, 20);   // throttled
    meter.finish();           // must flush the pending state
    EXPECT_NE(out.str().find("cell 2/4, 20 runs"), std::string::npos);
}

}  // namespace
}  // namespace adhoc::runner
