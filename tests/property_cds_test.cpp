// Property tests (parameterized over seeds): Theorem 1/2 — for EVERY
// algorithm and option combination, the transmitting set of a broadcast on
// a random connected unit disk graph is a CDS, delivery is complete, and
// trace invariants hold.

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"
#include "verify/invariants.hpp"

namespace adhoc {
namespace {

struct CaseParams {
    std::uint64_t seed;
    std::size_t node_count;
    double degree;
};

class CdsProperty : public ::testing::TestWithParam<CaseParams> {};

TEST_P(CdsProperty, EveryDeterministicAlgorithmYieldsCdsAndFullDelivery) {
    const CaseParams p = GetParam();
    Rng gen(p.seed);
    UnitDiskParams params;
    params.node_count = p.node_count;
    params.average_degree = p.degree;
    const auto net = generate_network_checked(params, gen);
    const NodeId source = static_cast<NodeId>(gen.index(p.node_count));

    const auto registry = make_registry();
    for (const auto& entry : registry) {
        if (entry.category == AlgorithmCategory::kBaseline && entry.key != "flooding") {
            continue;  // gossip gives no guarantee
        }
        Rng run(p.seed ^ 0xabcdef);
        const auto result = entry.algorithm->broadcast_traced(net.graph, source, run, {});

        EXPECT_TRUE(result.full_delivery)
            << entry.key << " failed delivery (seed " << p.seed << ")";
        const auto verdict = check_broadcast(net.graph, source, result);
        EXPECT_TRUE(verdict.ok())
            << entry.key << ": " << verdict.cds.describe() << " (seed " << p.seed << ")";
        const auto invariants = check_invariants(net.graph, source, result);
        EXPECT_TRUE(invariants.ok) << entry.key << ": " << invariants.describe();
        EXPECT_LE(result.forward_count, net.graph.node_count());
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, CdsProperty,
    ::testing::Values(CaseParams{1, 30, 6.0}, CaseParams{2, 30, 6.0}, CaseParams{3, 50, 6.0},
                      CaseParams{4, 50, 6.0}, CaseParams{5, 50, 10.0}, CaseParams{6, 70, 6.0},
                      CaseParams{7, 70, 10.0}, CaseParams{8, 40, 14.0}, CaseParams{9, 90, 6.0},
                      CaseParams{10, 60, 8.0}, CaseParams{11, 25, 5.0},
                      CaseParams{12, 100, 6.0}),
    [](const ::testing::TestParamInfo<CaseParams>& info) {
        return "seed" + std::to_string(info.param.seed) + "_n" +
               std::to_string(info.param.node_count) + "_d" +
               std::to_string(static_cast<int>(info.param.degree));
    });

}  // namespace
}  // namespace adhoc
