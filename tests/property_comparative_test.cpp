// Comparative properties that back the paper's evaluation claims, run at
// reduced scale: generic <= LENWB <= (neighbor-designating), SBA >= generic
// FRB, flooding is the upper bound, and the strong condition never prunes
// more than the full condition.

#include <gtest/gtest.h>

#include "algorithms/dominant_pruning.hpp"
#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "algorithms/lenwb.hpp"
#include "algorithms/sba.hpp"
#include "graph/unit_disk.hpp"

namespace adhoc {
namespace {

struct Totals {
    double flooding = 0;
    double generic_fr = 0;
    double generic_frb = 0;
    double lenwb = 0;
    double dp = 0;
    double pdp = 0;
    double sba = 0;
};

class Comparative : public ::testing::TestWithParam<double> {
  protected:
    static Totals accumulate(double degree, int iterations) {
        Totals t;
        Rng gen(static_cast<std::uint64_t>(degree * 1000) + 17);
        UnitDiskParams params;
        params.node_count = 60;
        params.average_degree = degree;

        const FloodingAlgorithm flooding;
        const GenericBroadcast gfr(generic_fr_config(2));
        const GenericBroadcast gfrb(generic_frb_config(2, PriorityScheme::kDegree));
        const LenwbAlgorithm lenwb;
        const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
        const DominantPruningAlgorithm pdp(DominantPruningVariant::kPdp);
        const SbaAlgorithm sba;

        for (int i = 0; i < iterations; ++i) {
            const auto net = generate_network_checked(params, gen);
            Rng run(i);
            const NodeId src = static_cast<NodeId>(run.index(params.node_count));
            auto count = [&](const BroadcastAlgorithm& algo) {
                Rng r = run.fork();
                const auto result = algo.broadcast(net.graph, src, r);
                EXPECT_TRUE(result.full_delivery) << algo.name();
                return static_cast<double>(result.forward_count);
            };
            t.flooding += count(flooding);
            t.generic_fr += count(gfr);
            t.generic_frb += count(gfrb);
            t.lenwb += count(lenwb);
            t.dp += count(dp);
            t.pdp += count(pdp);
            t.sba += count(sba);
        }
        return t;
    }
};

TEST_P(Comparative, PaperOrderingsHoldOnAverage) {
    const Totals t = accumulate(GetParam(), 30);

    // Everything beats flooding.
    for (double x : {t.generic_fr, t.generic_frb, t.lenwb, t.dp, t.pdp, t.sba}) {
        EXPECT_LT(x, t.flooding);
    }
    // Figure 15: DP >= PDP >= LENWB >= Generic (allow small noise margins).
    EXPECT_LE(t.pdp, t.dp * 1.02);
    EXPECT_LE(t.lenwb, t.pdp * 1.02);
    EXPECT_LE(t.generic_fr, t.lenwb * 1.02);
    // Figure 16: Generic FRB clearly beats SBA.
    EXPECT_LT(t.generic_frb, t.sba);
}

INSTANTIATE_TEST_SUITE_P(Densities, Comparative, ::testing::Values(6.0, 18.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                             return "d" + std::to_string(static_cast<int>(info.param));
                         });

}  // namespace
}  // namespace adhoc
