// Property sweep over the generic protocol's full configuration matrix:
// timing × selection × space × priority × coverage-variant.  Every
// combination must ensure full delivery and a CDS forward set on random
// connected networks (Theorem 2 is configuration-independent).

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

struct MatrixParams {
    Timing timing;
    Selection selection;
    std::size_t hops;
    PriorityScheme priority;
    bool strong;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParams>& info) {
    const MatrixParams& p = info.param;
    std::string s = to_string(p.timing) + "_" + to_string(p.selection) + "_k" +
                    std::to_string(p.hops) + "_" + to_string(p.priority);
    if (p.strong) s += "_strong";
    return s;
}

class ConfigMatrix : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(ConfigMatrix, DeliversAndFormsCds) {
    const MatrixParams p = GetParam();
    GenericConfig cfg;
    cfg.timing = p.timing;
    cfg.selection = p.selection;
    cfg.hops = p.hops;
    cfg.priority = p.priority;
    cfg.coverage.strong = p.strong;
    const GenericBroadcast algo(cfg);

    UnitDiskParams params;
    params.node_count = 45;
    params.average_degree = 7.0;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Rng gen(seed * 7919);
        const auto net = generate_network_checked(params, gen);
        const NodeId source = static_cast<NodeId>(gen.index(params.node_count));
        Rng run(seed);
        const auto result = algo.broadcast(net.graph, source, run);
        ASSERT_TRUE(result.full_delivery) << cfg.summary() << " seed " << seed;
        const auto verdict = check_broadcast(net.graph, source, result);
        ASSERT_TRUE(verdict.ok()) << cfg.summary() << ": " << verdict.cds.describe();
    }
}

std::vector<MatrixParams> matrix() {
    std::vector<MatrixParams> out;
    for (Timing t : {Timing::kFirstReceipt, Timing::kRandomBackoff, Timing::kDegreeBackoff}) {
        for (Selection s : {Selection::kSelfPruning, Selection::kNeighborDesignating,
                            Selection::kHybridMaxDegree, Selection::kHybridMinId}) {
            for (std::size_t k : {2u, 3u}) {
                for (PriorityScheme pr : {PriorityScheme::kId, PriorityScheme::kDegree}) {
                    out.push_back({t, s, k, pr, false});
                }
            }
        }
    }
    // Static timing: self-pruning only (static ND is MPR's territory).
    for (std::size_t k : {2u, 3u}) {
        for (PriorityScheme pr :
             {PriorityScheme::kId, PriorityScheme::kDegree, PriorityScheme::kNcr}) {
            out.push_back({Timing::kStatic, Selection::kSelfPruning, k, pr, false});
            out.push_back({Timing::kStatic, Selection::kSelfPruning, k, pr, true});
        }
    }
    // Strong-coverage dynamic spot checks.
    out.push_back({Timing::kFirstReceipt, Selection::kSelfPruning, 2, PriorityScheme::kId, true});
    out.push_back(
        {Timing::kRandomBackoff, Selection::kSelfPruning, 3, PriorityScheme::kDegree, true});
    return out;
}

INSTANTIATE_TEST_SUITE_P(AllAxes, ConfigMatrix, ::testing::ValuesIn(matrix()), param_name);

// Degenerate-topology termination: every timing × selection × space combo
// must run to completion on the smallest interesting graphs — a 3-node
// path (articulation chain) and a 4-node star (center bottleneck) — with
// every node served and a valid CDS.  Backoff timers and designation logic
// are easiest to deadlock exactly here, where neighborhoods are tiny.
TEST(ConfigMatrixTiny, EveryComboTerminatesOnPathAndStar) {
    const std::vector<Graph> graphs = {path_graph(3), star_graph(4)};
    for (Timing t : {Timing::kStatic, Timing::kFirstReceipt, Timing::kRandomBackoff,
                     Timing::kDegreeBackoff}) {
        for (Selection s : {Selection::kSelfPruning, Selection::kNeighborDesignating,
                            Selection::kHybridMaxDegree, Selection::kHybridMinId}) {
            if (t == Timing::kStatic && s != Selection::kSelfPruning) {
                continue;  // static designation is out of the supported matrix
            }
            for (std::size_t k : {0u, 2u, 3u}) {  // 0 = global knowledge
                GenericConfig cfg;
                cfg.timing = t;
                cfg.selection = s;
                cfg.hops = k;
                const GenericBroadcast algo(cfg);
                for (const Graph& g : graphs) {
                    for (NodeId source = 0; source < g.node_count(); ++source) {
                        Rng run(runner::derive_run_seed(1, g.node_count(), 2.0, source));
                        const auto result = algo.broadcast(g, source, run);
                        ASSERT_TRUE(result.full_delivery)
                            << cfg.summary() << " stuck on " << g.node_count()
                            << "-node graph, source " << source;
                        const auto verdict = check_broadcast(g, source, result);
                        ASSERT_TRUE(verdict.ok())
                            << cfg.summary() << " source " << source << ": "
                            << verdict.cds.describe();
                    }
                }
            }
        }
    }
}

}  // namespace
}  // namespace adhoc
