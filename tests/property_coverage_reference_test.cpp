// Brute-force cross-validation of the coverage-condition implementations.
//
// The production code computes the full condition via connected components
// of the higher-priority subgraph and the strong condition via component
// domination.  These tests re-derive both from first principles on small
// random graphs — the full condition by exhaustive simple-path enumeration
// (a replacement path exists iff DFS finds one), the strong condition by
// exhaustive subset search for a connected dominating coverage set — and
// demand bit-identical verdicts, across random statuses and all priority
// schemes, with and without the visited-merge rule.

#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "core/view.hpp"
#include "graph/unit_disk.hpp"

namespace adhoc {
namespace {

/// DFS: does a simple path u -> w exist whose intermediates all satisfy
/// `admissible` (endpoints exempt)?  With the visited-merge rule, two
/// admissible *visited* intermediates are treated as adjacent.
bool path_exists_dfs(const View& view, NodeId u, NodeId w,
                     const std::vector<char>& admissible, bool merge_visited,
                     NodeId current, std::vector<char>& used) {
    if (current == w) return true;
    // Candidate next hops: graph neighbors, plus (merge rule) every other
    // visited admissible node when standing on a visited node.
    auto try_next = [&](NodeId next) {
        if (used[next]) return false;
        if (next != w && !admissible[next]) return false;
        used[next] = 1;
        const bool found = path_exists_dfs(view, u, w, admissible, merge_visited, next, used);
        used[next] = 0;
        return found;
    };
    for (NodeId next : view.topology().neighbors(current)) {
        if (try_next(next)) return true;
    }
    // The merge rule connects ALL visited nodes — including a visited
    // path endpoint, so no `current != u` exemption here.
    (void)u;
    if (merge_visited && view.status(current) == NodeStatus::kVisited) {
        for (NodeId next = 0; next < view.node_count(); ++next) {
            if (view.status(next) == NodeStatus::kVisited && next != current &&
                admissible[next] && try_next(next)) {
                return true;
            }
        }
    }
    return false;
}

bool brute_force_full(const View& view, NodeId v, bool merge_visited,
                      NodeStatus self_status) {
    const Priority pv = view.keys().evaluate(v, self_status);
    const auto nv = view.topology().neighbors(v);
    if (nv.size() <= 1) return true;

    std::vector<char> admissible(view.node_count(), 0);
    for (NodeId x = 0; x < view.node_count(); ++x) {
        if (x != v && view.visible(x) && view.priority(x) > pv) admissible[x] = 1;
    }
    for (std::size_t i = 0; i < nv.size(); ++i) {
        for (std::size_t j = i + 1; j < nv.size(); ++j) {
            std::vector<char> used(view.node_count(), 0);
            used[nv[i]] = 1;
            used[v] = 1;  // the replaced node cannot appear on its own path
            if (!path_exists_dfs(view, nv[i], nv[j], admissible, merge_visited, nv[i],
                                 used)) {
                return false;
            }
        }
    }
    return true;
}

bool brute_force_strong(const View& view, NodeId v, bool merge_visited,
                        NodeStatus self_status) {
    const Priority pv = view.keys().evaluate(v, self_status);
    const auto nv = view.topology().neighbors(v);
    if (nv.size() <= 1) return true;

    std::vector<NodeId> candidates;
    for (NodeId x = 0; x < view.node_count(); ++x) {
        if (x != v && view.visible(x) && view.priority(x) > pv) candidates.push_back(x);
    }
    if (candidates.size() > 18) return false;  // keep the search tractable

    // Exhaust subsets: a coverage set must dominate N(v) and be connected
    // (with visited nodes treated as mutually adjacent when merging).
    for (std::uint32_t mask = 1; mask < (1u << candidates.size()); ++mask) {
        std::vector<NodeId> set;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (mask & (1u << i)) set.push_back(candidates[i]);
        }
        // Domination of N(v).
        bool dominates = true;
        for (NodeId u : nv) {
            bool ok = false;
            for (NodeId c : set) {
                if (c == u || view.topology().has_edge(c, u)) {
                    ok = true;
                    break;
                }
            }
            if (!ok) {
                dominates = false;
                break;
            }
        }
        if (!dominates) continue;
        // Connectivity of the set.
        std::vector<char> in_set(view.node_count(), 0);
        for (NodeId c : set) in_set[c] = 1;
        std::vector<char> reached(view.node_count(), 0);
        std::vector<NodeId> stack{set.front()};
        reached[set.front()] = 1;
        while (!stack.empty()) {
            const NodeId x = stack.back();
            stack.pop_back();
            for (NodeId y : view.topology().neighbors(x)) {
                if (in_set[y] && !reached[y]) {
                    reached[y] = 1;
                    stack.push_back(y);
                }
            }
            if (merge_visited && view.status(x) == NodeStatus::kVisited) {
                for (NodeId y : set) {
                    if (view.status(y) == NodeStatus::kVisited && !reached[y]) {
                        reached[y] = 1;
                        stack.push_back(y);
                    }
                }
            }
        }
        bool connected = true;
        for (NodeId c : set) connected = connected && reached[c];
        if (connected) return true;
    }
    return false;
}

struct RefParams {
    std::uint64_t seed;
    PriorityScheme priority;
};

class CoverageReference : public ::testing::TestWithParam<RefParams> {};

TEST_P(CoverageReference, ImplementationMatchesBruteForce) {
    const RefParams p = GetParam();
    Rng gen(p.seed);
    UnitDiskParams params;
    params.node_count = 10;
    params.average_degree = 4.0;

    for (int net_idx = 0; net_idx < 8; ++net_idx) {
        const auto net = generate_network_checked(params, gen);
        const PriorityKeys keys(net.graph, p.priority);

        // Random broadcast state.
        std::vector<char> visited(10, 0), designated(10, 0);
        for (int i = 0; i < 3; ++i) visited[gen.index(10)] = 1;
        for (int i = 0; i < 2; ++i) designated[gen.index(10)] = 1;

        for (NodeId v = 0; v < 10; ++v) {
            if (visited[v]) continue;
            for (std::size_t k : {2u, 0u}) {
                const View view = make_dynamic_view(net.graph, v, k, keys, visited, designated);
                for (bool merge : {true, false}) {
                    for (NodeStatus self :
                         {NodeStatus::kUnvisited, NodeStatus::kDesignated}) {
                        const CoverageOptions full{.strong = false, .merge_visited = merge};
                        const CoverageOptions strong{.strong = true, .merge_visited = merge};
                        ASSERT_EQ(coverage_condition_holds(view, v, full, self),
                                  brute_force_full(view, v, merge, self))
                            << "full mismatch: net " << net_idx << " v " << v << " k " << k
                            << " merge " << merge;
                        ASSERT_EQ(coverage_condition_holds(view, v, strong, self),
                                  brute_force_strong(view, v, merge, self))
                            << "strong mismatch: net " << net_idx << " v " << v << " k " << k
                            << " merge " << merge;
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CoverageReference,
    ::testing::Values(RefParams{1, PriorityScheme::kId}, RefParams{2, PriorityScheme::kId},
                      RefParams{3, PriorityScheme::kDegree},
                      RefParams{4, PriorityScheme::kDegree}, RefParams{5, PriorityScheme::kNcr},
                      RefParams{6, PriorityScheme::kNcr}),
    [](const ::testing::TestParamInfo<RefParams>& info) {
        return "seed" + std::to_string(info.param.seed) + "_" + to_string(info.param.priority);
    });

}  // namespace
}  // namespace adhoc
