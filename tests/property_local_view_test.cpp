// Property tests for the local-view theory (Theorem 2 and its corollary):
//  - the coverage condition is monotone in view information: a node pruned
//    under a k-hop view is also pruned under any larger view and globally;
//  - the static forward set shrinks (weakly) as k grows;
//  - the static forward set under any k is a superset of the global one.

#include <gtest/gtest.h>

#include "core/coverage.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

class LocalViewProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalViewProperty, PrunedUnderLocalViewImpliesPrunedGlobally) {
    Rng gen(GetParam());
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    const PriorityKeys keys(net.graph, PriorityScheme::kId);

    for (NodeId v = 0; v < net.graph.node_count(); ++v) {
        bool pruned_smaller = false;
        for (std::size_t k : {2u, 3u, 4u, 0u}) {  // 0 = global, checked last
            const View view = make_static_view(net.graph, v, k, keys);
            const bool pruned = coverage_condition_holds(view, v);
            if (pruned_smaller) {
                EXPECT_TRUE(pruned)
                    << "node " << v << " pruned at smaller k but not at k=" << k;
            }
            pruned_smaller = pruned_smaller || pruned;
        }
    }
}

TEST_P(LocalViewProperty, StaticForwardSetShrinksWithK) {
    Rng gen(GetParam() ^ 0x5555);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, gen);
    const PriorityKeys keys(net.graph, PriorityScheme::kDegree);

    std::size_t prev = net.graph.node_count() + 1;
    for (std::size_t k : {2u, 3u, 4u, 5u}) {
        const auto fwd = generic_static_forward_set(net.graph, k, keys, {});
        EXPECT_TRUE(is_cds(net.graph, fwd)) << "k=" << k;
        EXPECT_LE(set_size(fwd), prev) << "k=" << k;
        prev = set_size(fwd);
    }
    const auto global_fwd = generic_static_forward_set(net.graph, 0, keys, {});
    EXPECT_LE(set_size(global_fwd), prev);
}

TEST_P(LocalViewProperty, LocalForwardSetIsSupersetOfGlobal) {
    // Stronger than cardinality: membership containment — a node forward
    // under the global view is forward under every local view.
    Rng gen(GetParam() ^ 0xaaaa);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    const PriorityKeys keys(net.graph, PriorityScheme::kId);

    const auto global_fwd = generic_static_forward_set(net.graph, 0, keys, {});
    for (std::size_t k : {2u, 3u}) {
        const auto local_fwd = generic_static_forward_set(net.graph, k, keys, {});
        for (NodeId v = 0; v < net.graph.node_count(); ++v) {
            if (global_fwd[v]) {
                EXPECT_TRUE(local_fwd[v]) << "node " << v << " k=" << k;
            }
        }
    }
}

TEST_P(LocalViewProperty, MoreBroadcastStateNeverFlipsPruneToForward) {
    // Within one view, adding visited knowledge is monotone: if the
    // coverage condition holds with less state it holds with more.
    Rng gen(GetParam() ^ 0x1234);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);
    const PriorityKeys keys(net.graph, PriorityScheme::kId);
    Rng pick(GetParam());

    std::vector<char> few(net.graph.node_count(), 0);
    std::vector<char> many(net.graph.node_count(), 0);
    // `many` visits a superset of `few`.
    for (int i = 0; i < 5; ++i) few[pick.index(net.graph.node_count())] = 1;
    many = few;
    for (int i = 0; i < 10; ++i) many[pick.index(net.graph.node_count())] = 1;
    const std::vector<char> none(net.graph.node_count(), 0);

    for (NodeId v = 0; v < net.graph.node_count(); ++v) {
        if (few[v] || many[v]) continue;
        const View view_few = make_dynamic_view(net.graph, v, 2, keys, few, none);
        const View view_many = make_dynamic_view(net.graph, v, 2, keys, many, none);
        if (coverage_condition_holds(view_few, v)) {
            EXPECT_TRUE(coverage_condition_holds(view_many, v)) << "node " << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, LocalViewProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace adhoc
