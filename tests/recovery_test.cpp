/// \file recovery_test.cpp
/// \brief NACK-driven recovery layer: gap repair, bounded budgets, and
/// clean termination under total loss.

#include "faults/recovery.hpp"

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "graph/graph.hpp"

namespace adhoc {
namespace {

using faults::DeliveryOutcome;
using faults::FaultKind;
using faults::FaultPlan;
using faults::RecoveryConfig;

TEST(Recovery, TerminatesUnderTotalLoss) {
    // 100% loss: no data, no beacons, no NACKs ever arrive.  Every budget
    // is finite, so the event queue must drain — this test hanging IS the
    // failure mode it guards against.
    const FloodingAlgorithm flooding;
    MediumConfig medium;
    medium.loss_probability = 1.0;
    Rng rng(17);
    const ResilientResult r = flooding.broadcast_resilient(
        path_graph(6), 0, rng, medium, FaultPlan{}, RecoveryConfig{});
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kDegraded);
    EXPECT_EQ(r.summary.delivered_up, 1u);  // only the source holds it
    EXPECT_EQ(r.result.retransmit_count, 0u);
    // The source still beacons into the void, but never more than its
    // budget allows.
    EXPECT_LE(r.result.control_count, RecoveryConfig{}.max_beacons);
}

TEST(Recovery, RepairsCrashRecoverGap) {
    // Path 0-1-2: node 2 is down when the packet passes and recovers
    // after.  Without recovery it stays empty; with recovery a holder
    // beacon triggers its NACK and a retransmission fills the gap.
    FaultPlan plan;
    plan.events = {{0.5, FaultKind::kNodeCrash, 2, Edge{}},
                   {3.0, FaultKind::kNodeRecover, 2, Edge{}}};
    const FloodingAlgorithm flooding;

    RecoveryConfig off;
    off.enabled = false;
    Rng rng_off(5);
    const ResilientResult without = flooding.broadcast_resilient(
        path_graph(3), 0, rng_off, MediumConfig{}, plan, off);
    EXPECT_EQ(without.summary.outcome, DeliveryOutcome::kDegraded);
    EXPECT_FALSE(static_cast<bool>(without.result.received[2]));

    Rng rng_on(5);
    const ResilientResult with = flooding.broadcast_resilient(
        path_graph(3), 0, rng_on, MediumConfig{}, plan, RecoveryConfig{});
    EXPECT_EQ(with.summary.outcome, DeliveryOutcome::kDelivered);
    EXPECT_TRUE(static_cast<bool>(with.result.received[2]));
    EXPECT_GE(with.result.retransmit_count, 1u);
    EXPECT_DOUBLE_EQ(with.summary.delivery_ratio, 1.0);
}

TEST(Recovery, WorksUnderGenericFramework) {
    // The recovery decorator must compose with the paper's framework, not
    // just flooding: its control plane uses a disjoint timer-id space.
    FaultPlan plan;
    plan.events = {{0.5, FaultKind::kNodeCrash, 3, Edge{}},
                   {4.0, FaultKind::kNodeRecover, 3, Edge{}}};
    const GenericBroadcast generic(generic_fr_config(2), "Generic FR");
    Rng rng(29);
    const ResilientResult r = generic.broadcast_resilient(
        path_graph(5), 0, rng, MediumConfig{}, plan, RecoveryConfig{});
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kDelivered);
    EXPECT_TRUE(static_cast<bool>(r.result.received[3]));
}

TEST(Recovery, ControlTrafficRespectsBudgets) {
    // Heavy loss makes every node beacon and NACK to its limits; the
    // totals must stay within n * (beacon + nack) budgets.
    const FloodingAlgorithm flooding;
    MediumConfig medium;
    medium.loss_probability = 0.7;
    const RecoveryConfig cfg;
    const Graph g = grid_graph(3, 3);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        const ResilientResult r =
            flooding.broadcast_resilient(g, 0, rng, medium, FaultPlan{}, cfg);
        const std::size_t n = g.node_count();
        EXPECT_LE(r.result.control_count, n * (cfg.max_beacons + cfg.max_nacks));
        EXPECT_LE(r.result.retransmit_count, n);  // resend marks a node a holder
    }
}

TEST(Recovery, DisabledLayerIsInert) {
    RecoveryConfig off;
    off.enabled = false;
    const FloodingAlgorithm flooding;
    Rng rng(3);
    const ResilientResult r = flooding.broadcast_resilient(
        cycle_graph(6), 0, rng, MediumConfig{}, FaultPlan{}, off);
    EXPECT_EQ(r.result.control_count, 0u);
    EXPECT_EQ(r.result.retransmit_count, 0u);
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kDelivered);
    EXPECT_TRUE(r.result.full_delivery);
}

TEST(Recovery, FaultedRunsAreDeterministic) {
    FaultPlan plan;
    plan.events = {{1.5, FaultKind::kNodeCrash, 4, Edge{}},
                   {5.0, FaultKind::kNodeRecover, 4, Edge{}}};
    plan.asymmetry = {{Edge{1, 2}, 0.5, 0.0}};
    plan.loss_stream_seed = 77;
    const FloodingAlgorithm flooding;
    MediumConfig medium;
    medium.loss_probability = 0.2;
    const auto run = [&] {
        Rng rng(123);
        return flooding.broadcast_resilient(grid_graph(3, 3), 0, rng, medium, plan,
                                            RecoveryConfig{}, /*trace=*/true);
    };
    const ResilientResult a = run();
    const ResilientResult b = run();
    EXPECT_EQ(a.result.received, b.result.received);
    EXPECT_EQ(a.result.retransmit_count, b.result.retransmit_count);
    EXPECT_EQ(a.result.control_count, b.result.control_count);
    EXPECT_EQ(a.result.trace.events().size(), b.result.trace.events().size());
    EXPECT_EQ(a.summary.outcome, b.summary.outcome);
}

}  // namespace
}  // namespace adhoc
