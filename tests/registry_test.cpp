// Unit tests for the algorithm registry (Table 1 taxonomy data).

#include "algorithms/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/unit_disk.hpp"

namespace adhoc {
namespace {

TEST(Registry, ContainsAllPaperAlgorithms) {
    const auto reg = make_registry();
    for (const char* key : {"flooding", "wu-li", "rule-k", "span", "mpr", "dp", "tdp", "pdp",
                            "lenwb", "sba", "stojmenovic", "generic-static", "generic-fr",
                            "generic-frb", "generic-frbd", "hybrid-maxdeg", "hybrid-minpri"}) {
        EXPECT_NE(find_algorithm(reg, key), nullptr) << key;
    }
}

TEST(Registry, KeysAreUnique) {
    const auto reg = make_registry();
    std::set<std::string> keys;
    for (const auto& e : reg) {
        EXPECT_TRUE(keys.insert(e.key).second) << "duplicate key " << e.key;
    }
}

TEST(Registry, UnknownKeyReturnsNull) {
    const auto reg = make_registry();
    EXPECT_EQ(find_algorithm(reg, "no-such-algorithm"), nullptr);
}

TEST(Registry, Table1Categories) {
    const auto reg = make_registry();
    auto category_of = [&](const std::string& key) {
        for (const auto& e : reg) {
            if (e.key == key) return e.category;
        }
        ADD_FAILURE() << "missing " << key;
        return AlgorithmCategory::kBaseline;
    };
    EXPECT_EQ(category_of("rule-k"), AlgorithmCategory::kStatic);
    EXPECT_EQ(category_of("span"), AlgorithmCategory::kStatic);
    EXPECT_EQ(category_of("mpr"), AlgorithmCategory::kStatic);
    EXPECT_EQ(category_of("lenwb"), AlgorithmCategory::kFirstReceipt);
    EXPECT_EQ(category_of("dp"), AlgorithmCategory::kFirstReceipt);
    EXPECT_EQ(category_of("pdp"), AlgorithmCategory::kFirstReceipt);
    EXPECT_EQ(category_of("sba"), AlgorithmCategory::kFirstReceiptWithBackoff);
}

TEST(Registry, Table1SelectionStyles) {
    const auto reg = make_registry();
    auto style_of = [&](const std::string& key) {
        for (const auto& e : reg) {
            if (e.key == key) return e.style;
        }
        ADD_FAILURE() << "missing " << key;
        return SelectionStyle::kNone;
    };
    EXPECT_EQ(style_of("mpr"), SelectionStyle::kNeighborDesignating);
    EXPECT_EQ(style_of("dp"), SelectionStyle::kNeighborDesignating);
    EXPECT_EQ(style_of("sba"), SelectionStyle::kSelfPruning);
    EXPECT_EQ(style_of("hybrid-maxdeg"), SelectionStyle::kHybrid);
}

TEST(Registry, EveryAlgorithmDeliversOnASmallNetwork) {
    Rng rng(131);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    const auto reg = make_registry();
    for (const auto& e : reg) {
        if (e.key.rfind("gossip", 0) == 0) continue;  // probabilistic: no guarantee
        Rng run(3);
        const auto result = e.algorithm->broadcast(net.graph, 0, run);
        EXPECT_TRUE(result.full_delivery) << e.key;
    }
}

TEST(Registry, ScaleConfigMappingIsExact) {
    // The honesty contract of `scale_config_for`: every key it maps must be
    // reproduced *exactly* by the ScaleEngine — same forward mask as the
    // serial algorithm — and the mapped set is exactly the exact-equivalence
    // keys (notably NOT wu-li / rule-k, whose marking prechecks diverge from
    // the pure coverage condition).
    Rng rng(77);
    UnitDiskParams params;
    params.node_count = 120;
    params.average_degree = 7.0;
    const auto net = generate_network_checked(params, rng);
    const auto reg = make_registry();

    std::set<std::string> mapped;
    for (const auto& e : reg) {
        const auto cfg = scale_config_for(e.key);
        if (!cfg) continue;
        mapped.insert(e.key);
        Rng run(5);
        const BroadcastResult ref = e.algorithm->broadcast(net.graph, 4, run);
        ScaleEngine engine(net.graph, *cfg);
        const ScaleResult got = engine.run(4);
        EXPECT_EQ(engine.forwarded_mask(), ref.transmitted) << e.key;
        EXPECT_EQ(got.forward_count, ref.forward_count) << e.key;
        EXPECT_EQ(got.received_count, ref.received_count) << e.key;
    }
    EXPECT_EQ(mapped, (std::set<std::string>{"flooding", "generic-static", "generic-fr"}));
    EXPECT_FALSE(scale_config_for("no-such-algorithm").has_value());
}

TEST(Registry, ToStringCoverage) {
    EXPECT_EQ(to_string(AlgorithmCategory::kStatic), "Static");
    EXPECT_EQ(to_string(AlgorithmCategory::kFirstReceiptWithBackoff),
              "First-receipt-with-backoff");
    EXPECT_EQ(to_string(SelectionStyle::kHybrid), "Hybrid");
}

}  // namespace
}  // namespace adhoc
