/// \file resilience_partition_test.cpp
/// \brief Satellite 3: a crash that disconnects the graph must classify as
/// `partitioned` — terminating cleanly, never hanging and never reported
/// as a protocol failure.

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "faults/recovery.hpp"
#include "graph/graph.hpp"

namespace adhoc {
namespace {

using faults::DeliveryOutcome;
using faults::FaultKind;
using faults::FaultPlan;
using faults::RecoveryConfig;

/// Two K4 cliques joined by the single bridge edge 3-4.
Graph barbell8() {
    Graph g(8);
    for (NodeId u = 0; u < 4; ++u) {
        for (NodeId v = u + 1; v < 4; ++v) {
            g.add_edge(u, v);
            g.add_edge(4 + u, 4 + v);
        }
    }
    g.add_edge(3, 4);
    return g;
}

/// Crash the near bridge endpoint before the packet can cross: nodes 4-7
/// become unreachable from source 0.
FaultPlan bridge_crash() {
    FaultPlan plan;
    plan.events = {{0.5, FaultKind::kNodeCrash, 3, Edge{}}};
    return plan;
}

TEST(ResiliencePartition, BridgeCrashClassifiesAsPartitioned) {
    const FloodingAlgorithm flooding;
    Rng rng(7);
    const ResilientResult r = flooding.broadcast_resilient(
        barbell8(), 0, rng, MediumConfig{}, bridge_crash(), RecoveryConfig{});
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kPartitioned);
    EXPECT_EQ(r.summary.up_count, 7u);         // node 3 is down
    EXPECT_EQ(r.summary.reachable_count, 3u);  // near clique minus the bridge node
    EXPECT_EQ(r.summary.missed_reachable, 0u); // everyone reachable got it
    EXPECT_LT(r.summary.delivered_up, r.summary.up_count);
    // Partitioned-but-clean: the ratio measures protocol performance on
    // the reachable part, which is perfect here.
    EXPECT_DOUBLE_EQ(r.summary.delivery_ratio, 1.0);
}

TEST(ResiliencePartition, RecoveryLayerCannotCrossAPartition) {
    // With the NACK layer armed, the far clique still never hears a
    // beacon (no path), so the run must terminate with bounded control
    // traffic and the same classification.
    const FloodingAlgorithm flooding;
    const RecoveryConfig cfg;
    Rng rng(11);
    const ResilientResult r = flooding.broadcast_resilient(
        barbell8(), 0, rng, MediumConfig{}, bridge_crash(), cfg);
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kPartitioned);
    EXPECT_EQ(r.result.retransmit_count, 0u);  // nothing NACKed across the cut
    EXPECT_LE(r.result.control_count, 8u * cfg.max_beacons);
    for (NodeId v = 4; v < 8; ++v) {
        EXPECT_FALSE(static_cast<bool>(r.result.received[v])) << "node " << v;
    }
}

TEST(ResiliencePartition, GenericFrameworkSameVerdict) {
    const GenericBroadcast generic(generic_fr_config(2), "Generic FR");
    Rng rng(13);
    const ResilientResult r = generic.broadcast_resilient(
        barbell8(), 0, rng, MediumConfig{}, bridge_crash(), RecoveryConfig{});
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kPartitioned);
    EXPECT_DOUBLE_EQ(r.summary.delivery_ratio, 1.0);
}

TEST(ResiliencePartition, CrashedSourceMakesEveryoneUnreachable) {
    FaultPlan plan;
    plan.events = {{0.5, FaultKind::kNodeCrash, 0, Edge{}}};
    const FloodingAlgorithm flooding;
    Rng rng(3);
    const ResilientResult r = flooding.broadcast_resilient(
        path_graph(4), 0, rng, MediumConfig{}, plan, RecoveryConfig{});
    // The source transmits at t=0 before dying at 0.5, so delivery may
    // partially proceed; classification only requires that no *reachable*
    // node missed out — with the source down, nobody is reachable.
    EXPECT_EQ(r.summary.reachable_count, 0u);
    EXPECT_EQ(r.summary.missed_reachable, 0u);
    EXPECT_NE(r.summary.outcome, DeliveryOutcome::kDegraded);
}

TEST(ResiliencePartition, LateCrashAfterDeliveryIsStillDelivered) {
    // The bridge node dies *after* relaying: everyone already has the
    // packet, so the final-topology partition does not demote the run.
    FaultPlan plan;
    plan.events = {{50.0, FaultKind::kNodeCrash, 3, Edge{}}};
    const FloodingAlgorithm flooding;
    Rng rng(19);
    const ResilientResult r = flooding.broadcast_resilient(
        barbell8(), 0, rng, MediumConfig{}, plan, RecoveryConfig{});
    EXPECT_EQ(r.summary.outcome, DeliveryOutcome::kDelivered);
    EXPECT_EQ(r.summary.delivered_up, r.summary.up_count);
}

}  // namespace
}  // namespace adhoc
