// Unit tests for the seeded RNG wrapper.

#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace adhoc {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.uniform() == b.uniform()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(3.0, 5.0);
        EXPECT_GE(x, 3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, IndexRange) {
    Rng rng(9);
    std::set<std::size_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::size_t k = rng.index(7);
        EXPECT_LT(k, 7u);
        seen.insert(k);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(Rng, ChanceExtremes) {
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStreams) {
    Rng parent(17);
    Rng child = parent.fork();
    // The child stream must not replay the parent's continuation.
    Rng parent_copy(17);
    (void)parent_copy.fork();
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (child.uniform() == parent.uniform()) ++same;
    }
    EXPECT_LT(same, 3);
}

// ---- Golden streams ---------------------------------------------------
//
// Every repro file, corpus fingerprint and bench baseline in this repo
// assumes the draw sequences below never change.  std::mt19937_64 is
// specified exactly, but the *distributions* (uniform_real, uniform_int,
// bernoulli) are implementation-defined — these values pin libstdc++'s
// mapping (see docs/RUNNER.md).  If any of these tests fails after a
// toolchain change, the stored corpus and baselines are invalid on that
// toolchain; do NOT "fix" the expectations without regenerating both.

TEST(RngGolden, Uniform01Stream) {
    Rng rng(42);
    const std::array<double, 8> expected = {
        0.75515553295453897, 0.63903139385469743, 0.7521452007480266,
        0.13627268363243711, 0.90326896642837828, 0.094068311762837128,
        0.57457030410826404, 0.37288769945618483,
    };
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(rng.uniform(), expected[i]) << "draw " << i;
    }
}

TEST(RngGolden, UniformRangeStream) {
    Rng rng(42);
    const std::array<double, 4> expected = {
        4.5103110659090779, 4.2780627877093949,
        4.5042904014960534, 3.2725453672648741,
    };
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(rng.uniform(3.0, 5.0), expected[i]) << "draw " << i;
    }
}

TEST(RngGolden, IndexStream) {
    Rng rng(42);
    const std::array<std::size_t, 8> expected = {7, 6, 7, 1, 9, 0, 5, 3};
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(rng.index(10), expected[i]) << "draw " << i;
    }
}

TEST(RngGolden, ChanceStream) {
    Rng rng(42);
    const std::array<bool, 8> expected = {false, false, false, true,
                                          false, true,  false, false};
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(rng.chance(0.3), expected[i]) << "draw " << i;
    }
}

TEST(RngGolden, ForkStream) {
    Rng rng(42);
    Rng child = rng.fork();
    EXPECT_DOUBLE_EQ(child.uniform(), 0.16314207539971273);
    // Forking consumes exactly one engine draw from the parent: the next
    // parent value equals the second value of the unforked stream.
    EXPECT_DOUBLE_EQ(rng.uniform(), 0.63903139385469743);
}

TEST(Rng, ForkIsDeterministic) {
    Rng a(21), b(21);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
    }
}

}  // namespace
}  // namespace adhoc
