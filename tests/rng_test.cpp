// Unit tests for the seeded RNG wrapper.

#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace adhoc {
namespace {

TEST(Rng, DeterministicForSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.uniform() == b.uniform()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(3.0, 5.0);
        EXPECT_GE(x, 3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, IndexRange) {
    Rng rng(9);
    std::set<std::size_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::size_t k = rng.index(7);
        EXPECT_LT(k, 7u);
        seen.insert(k);
    }
    EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(Rng, ChanceExtremes) {
    Rng rng(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(13);
    int hits = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStreams) {
    Rng parent(17);
    Rng child = parent.fork();
    // The child stream must not replay the parent's continuation.
    Rng parent_copy(17);
    (void)parent_copy.fork();
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (child.uniform() == parent.uniform()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
    Rng a(21), b(21);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
    }
}

}  // namespace
}  // namespace adhoc
