// Unit tests for Dai & Wu's Rule k (strong coverage on static views).

#include "algorithms/rule_k.hpp"

#include <gtest/gtest.h>

#include "algorithms/wu_li.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(RuleK, CompleteGraphEmpty) {
    const auto fwd = rule_k_forward_set(complete_graph(5), {});
    EXPECT_EQ(set_size(fwd), 0u);
}

TEST(RuleK, PathKeepsInterior) {
    const auto fwd = rule_k_forward_set(path_graph(5), {});
    EXPECT_FALSE(fwd[0]);
    EXPECT_TRUE(fwd[1]);
    EXPECT_TRUE(fwd[2]);
    EXPECT_TRUE(fwd[3]);
    EXPECT_FALSE(fwd[4]);
}

TEST(RuleK, PrunesWithThreeConnectedCoverageNodes) {
    // Wheel-ish: node 0's neighbors {1,2,3} covered by the connected chain
    // {4,5,6} (ids all above... use priorities): here coverage nodes are
    // 4-5-6 with edges 4-5, 5-6, covering 1,2,3 respectively — a Rule-3
    // case neither Rule 1 nor Rule 2 handles.
    Graph g(7);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    g.add_edge(4, 1);
    g.add_edge(5, 2);
    g.add_edge(6, 3);
    g.add_edge(4, 5);
    g.add_edge(5, 6);
    // Make the coverage nodes adjacent to node 0's view (3-hop info).
    const RuleKConfig cfg{.hops = 3, .priority = PriorityScheme::kId};
    const auto fwd = rule_k_forward_set(g, cfg);
    EXPECT_FALSE(fwd[0]) << "Rule k must prune via 3 self-connected coverage nodes";
    // Wu-Li Rules 1/2 cannot prune node 0 (no single node or pair works).
    const auto wl = wu_li_forward_set(g, {.hops = 3});
    EXPECT_TRUE(wl[0]);
}

TEST(RuleK, ForwardSetIsCdsOnRandomNetworks) {
    Rng rng(29);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        for (std::size_t hops : {2u, 3u}) {
            RuleKConfig cfg;
            cfg.hops = hops;
            const auto fwd = rule_k_forward_set(net.graph, cfg);
            EXPECT_TRUE(is_cds(net.graph, fwd)) << "i=" << i << " hops=" << hops;
        }
    }
}

TEST(RuleK, NoLargerThanWuLi) {
    // Rule k generalizes Rules 1 and 2: it can only prune more.
    Rng rng(31);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    for (int i = 0; i < 5; ++i) {
        const auto net = generate_network_checked(params, rng);
        const auto rk =
            rule_k_forward_set(net.graph, {.hops = 3, .priority = PriorityScheme::kId});
        const auto wl =
            wu_li_forward_set(net.graph, {.hops = 3, .priority = PriorityScheme::kId});
        EXPECT_LE(set_size(rk), set_size(wl)) << "iteration " << i;
    }
}

TEST(RuleK, ThreeHopNeverWorseThanTwoHop) {
    Rng rng(37);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    for (int i = 0; i < 5; ++i) {
        const auto net = generate_network_checked(params, rng);
        const auto k2 = rule_k_forward_set(net.graph, {.hops = 2});
        const auto k3 = rule_k_forward_set(net.graph, {.hops = 3});
        EXPECT_LE(set_size(k3), set_size(k2));
    }
}

TEST(RuleK, BroadcastDelivers) {
    const RuleKAlgorithm algo;
    const Graph g = grid_graph(4, 5);
    Rng rng(2);
    const auto result = algo.broadcast(g, 10, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_TRUE(check_broadcast(g, 10, result).ok());
}

}  // namespace
}  // namespace adhoc
