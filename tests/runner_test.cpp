// Tests for the campaign runner: counter-based seed derivation, the
// work-stealing thread pool, and the determinism contract (results are
// bit-for-bit identical at any --jobs value).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "runner/campaign.hpp"
#include "runner/json_sink.hpp"
#include "runner/seed.hpp"
#include "runner/thread_pool.hpp"
#include "stats/experiment.hpp"

namespace adhoc {
namespace {

using runner::derive_run_seed;
using runner::splitmix64;

// ---------------------------------------------------------------- seeds --

TEST(Seed, SplitmixMatchesReferenceStream) {
    // First three outputs of the reference splitmix64 sequence seeded with
    // 0 (Steele/Lea/Flood; same values as the JDK and xoshiro seeders).
    // Pins cross-platform stability of the mixer itself.
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitmix64(0x9e3779b97f4a7c15ULL), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(splitmix64(2 * 0x9e3779b97f4a7c15ULL), 0x06c45d188009454fULL);
}

TEST(Seed, DerivationIsStable) {
    // Golden values: any change to the derivation scheme silently reseeds
    // every figure, so it must be deliberate and show up in this test.
    const std::uint64_t a = derive_run_seed(42, 20, 6.0, 0);
    EXPECT_EQ(a, derive_run_seed(42, 20, 6.0, 0));
    static_assert(derive_run_seed(42, 20, 6.0, 0) == derive_run_seed(42, 20, 6.0, 0));
}

TEST(Seed, CoordinatesAreIndependent) {
    // Changing any single coordinate changes the seed.
    const std::uint64_t base = derive_run_seed(42, 50, 6.0, 10);
    EXPECT_NE(base, derive_run_seed(43, 50, 6.0, 10));
    EXPECT_NE(base, derive_run_seed(42, 51, 6.0, 10));
    EXPECT_NE(base, derive_run_seed(42, 50, 18.0, 10));
    EXPECT_NE(base, derive_run_seed(42, 50, 6.0, 11));
}

TEST(Seed, NoCollisionsAcrossPaperGrid) {
    // The full paper grid at --full scale: 9 node counts x 2 densities x
    // 2000 runs.  All 36000 seeds must be distinct.
    std::set<std::uint64_t> seeds;
    for (std::size_t n = 20; n <= 100; n += 10) {
        for (double d : {6.0, 18.0}) {
            for (std::uint64_t run = 0; run < 2000; ++run) {
                seeds.insert(derive_run_seed(42, n, d, run));
            }
        }
    }
    EXPECT_EQ(seeds.size(), 9u * 2u * 2000u);
}

// ----------------------------------------------------------- thread pool --

TEST(ThreadPool, RunsEverySubmittedTask) {
    std::atomic<std::size_t> count{0};
    {
        runner::ThreadPool pool(4);
        for (int i = 0; i < 10'000; ++i) {
            pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
        }
    }  // destructor drains the queues
    EXPECT_EQ(count.load(), 10'000u);
}

TEST(ThreadPool, WorkersCanSubmitContinuations) {
    // Recursive fan-out from inside tasks: 1 root spawning 2 children each
    // down 10 levels = 2^11 - 1 tasks.
    std::atomic<std::size_t> count{0};
    {
        // Declared before the pool: tasks referencing `spawn` may still be
        // draining inside the pool's destructor.
        std::function<void(int)> spawn;
        runner::ThreadPool pool(8);
        spawn = [&](int depth) {
            count.fetch_add(1, std::memory_order_relaxed);
            if (depth == 0) return;
            pool.submit([&spawn, depth] { spawn(depth - 1); });
            pool.submit([&spawn, depth] { spawn(depth - 1); });
        };
        pool.submit([&spawn] { spawn(10); });
    }
    EXPECT_EQ(count.load(), (1u << 11) - 1);
}

TEST(ThreadPool, StressManyProducersManyConsumers) {
    std::atomic<std::size_t> count{0};
    {
        runner::ThreadPool pool(4);
        std::vector<std::thread> producers;
        for (int p = 0; p < 4; ++p) {
            producers.emplace_back([&pool, &count] {
                for (int i = 0; i < 2'500; ++i) {
                    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
                }
            });
        }
        for (auto& t : producers) t.join();
    }
    EXPECT_EQ(count.load(), 10'000u);
}

TEST(ThreadPool, DefaultJobsIsPositive) { EXPECT_GE(runner::ThreadPool::default_jobs(), 1u); }

// ------------------------------------------------------------- campaigns --

ExperimentConfig campaign_config() {
    ExperimentConfig cfg;
    cfg.node_counts = {20, 30, 40};
    cfg.average_degree = 6.0;
    cfg.min_runs = 10;
    cfg.max_runs = 40;
    cfg.seed = 99;
    return cfg;
}

void expect_identical(const std::vector<AlgorithmSeries>& a,
                      const std::vector<AlgorithmSeries>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        EXPECT_EQ(a[s].name, b[s].name);
        ASSERT_EQ(a[s].points.size(), b[s].points.size());
        for (std::size_t i = 0; i < a[s].points.size(); ++i) {
            const SeriesPoint& pa = a[s].points[i];
            const SeriesPoint& pb = b[s].points[i];
            EXPECT_EQ(pa.node_count, pb.node_count);
            EXPECT_EQ(pa.runs, pb.runs);
            EXPECT_EQ(pa.delivery_failures, pb.delivery_failures);
            // Bit-for-bit, not approximate: memcmp of the raw doubles.
            EXPECT_EQ(std::memcmp(&pa.mean_forward, &pb.mean_forward, sizeof(double)), 0)
                << a[s].name << " n=" << pa.node_count;
            EXPECT_EQ(std::memcmp(&pa.ci_half_width, &pb.ci_half_width, sizeof(double)), 0);
            EXPECT_EQ(std::memcmp(&pa.mean_completion_time, &pb.mean_completion_time,
                                  sizeof(double)),
                      0);
        }
    }
}

TEST(Campaign, BitIdenticalAcrossJobCounts) {
    // The determinism contract: jobs=1 and jobs=8 (more workers than this
    // container has cores, so stealing and reordering really happen) must
    // produce byte-identical sweeps.
    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2));
    const std::vector<const BroadcastAlgorithm*> algos{&flooding, &generic};
    const auto cfg = campaign_config();

    runner::CampaignOptions serial;
    serial.jobs = 1;
    runner::CampaignOptions parallel;
    parallel.jobs = 8;

    const auto a = runner::run_campaign(algos, cfg, serial);
    const auto b = runner::run_campaign(algos, cfg, parallel);
    expect_identical(a, b);

    // And a repeat at jobs=8 to catch nondeterminism between equal-jobs runs.
    const auto c = runner::run_campaign(algos, cfg, parallel);
    expect_identical(b, c);
}

TEST(Campaign, RunSweepUsesTheRunner) {
    // run_sweep(jobs=N) must equal run_campaign at the same config — and
    // therefore run_sweep(jobs=1) bit-for-bit.
    const GenericBroadcast generic(generic_fr_config(2));
    auto cfg = campaign_config();
    cfg.jobs = 1;
    const auto serial = run_sweep({&generic}, cfg);
    cfg.jobs = 8;
    const auto parallel = run_sweep({&generic}, cfg);
    expect_identical(serial, parallel);
}

TEST(Campaign, ProgressIsMonotonicAndComplete) {
    const FloodingAlgorithm flooding;
    auto cfg = campaign_config();
    runner::CampaignOptions options;
    options.jobs = 4;
    std::size_t last_runs = 0;
    std::size_t last_cells = 0;
    std::size_t calls = 0;
    options.on_progress = [&](const runner::CampaignProgress& p) {
        EXPECT_EQ(p.cells_total, cfg.node_counts.size());
        EXPECT_GE(p.runs_done, last_runs);
        EXPECT_GE(p.cells_done, last_cells);
        last_runs = p.runs_done;
        last_cells = p.cells_done;
        ++calls;
    };
    const auto series = runner::run_campaign({&flooding}, cfg, options);
    EXPECT_GT(calls, 0u);
    EXPECT_EQ(last_cells, cfg.node_counts.size());
    ASSERT_EQ(series.size(), 1u);
    // Flooding's forward count is constant, so each cell stops after the
    // first CI check at min_runs.
    for (const auto& p : series[0].points) EXPECT_EQ(p.runs, cfg.min_runs);
}

TEST(Campaign, StoppingRuleRespectsMaxRuns) {
    const GenericBroadcast generic(generic_fr_config(2));
    auto cfg = campaign_config();
    cfg.node_counts = {25};
    cfg.min_runs = 4;
    cfg.max_runs = 10;  // not a multiple of min_runs: last round is clamped
    runner::CampaignOptions options;
    options.jobs = 2;
    const auto series = runner::run_campaign({&generic}, cfg, options);
    EXPECT_GE(series[0].points[0].runs, cfg.min_runs);
    EXPECT_LE(series[0].points[0].runs, cfg.max_runs);
}

// ------------------------------------------------------------- JSON sink --

TEST(JsonSink, EscapesStrings) {
    EXPECT_EQ(runner::json_escape("plain"), "plain");
    EXPECT_EQ(runner::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(runner::json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonSink, WritesWellFormedDocument) {
    runner::BenchRunInfo info;
    info.name = "unit_test";
    info.seed = 7;
    info.jobs = 2;
    info.min_runs = 5;
    info.max_runs = 10;
    info.wall_seconds = 0.5;

    AlgorithmSeries series;
    series.name = "Flooding";
    SeriesPoint p;
    p.node_count = 20;
    p.mean_forward = 20.0;
    p.runs = 5;
    series.points.push_back(p);

    std::ostringstream out;
    runner::write_bench_json(out, info, {{"d=6", 6.0, {series}}});
    const std::string json = out.str();

    // Structural spot checks (no JSON parser in the toolchain).
    EXPECT_NE(json.find("\"schema\": \"adhoc-bench-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"Flooding\""), std::string::npos);
    EXPECT_NE(json.find("\"mean_forward\": 20"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace adhoc
