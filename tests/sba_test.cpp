// Unit tests for SBA (first-receipt-with-backoff neighbor elimination).

#include "algorithms/sba.hpp"

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Sba, DeliversOnDeterministicTopologies) {
    const SbaAlgorithm algo;
    for (const Graph& g : {path_graph(6), cycle_graph(7), grid_graph(4, 4)}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            Rng rng(seed);
            const auto result = algo.broadcast(g, 0, rng);
            EXPECT_TRUE(result.full_delivery) << "n=" << g.node_count() << " seed=" << seed;
        }
    }
}

TEST(Sba, TriangleSourceOnly) {
    // Both non-source nodes hear the source, whose neighborhood covers
    // everything: they eliminate all neighbors and stay silent.
    const SbaAlgorithm algo;
    const Graph g = complete_graph(3);
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 1u);
}

TEST(Sba, ForwardSetIsCdsOnRandomNetworks) {
    Rng rng(73);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const SbaAlgorithm algo;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng run(i);
        const NodeId src = static_cast<NodeId>(run.index(60));
        const auto result = algo.broadcast(net.graph, src, run);
        EXPECT_TRUE(result.full_delivery) << i;
        EXPECT_TRUE(check_broadcast(net.graph, src, result).ok()) << i;
    }
}

TEST(Sba, PrunesComparedToFlooding) {
    Rng rng(79);
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 10.0;
    const auto net = generate_network_checked(params, rng);
    const SbaAlgorithm sba;
    Rng run(1);
    const auto result = sba.broadcast(net.graph, 0, run);
    EXPECT_LT(result.forward_count, net.graph.node_count());
}

TEST(Sba, ThreeHopWithHistoryNeverWorseOnAverage) {
    // With 3-hop info + piggybacked history SBA can also credit coverage
    // from 2-hop visited nodes.
    Rng rng(83);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    const SbaAlgorithm k2(SbaConfig{.hops = 2, .history = 1});
    const SbaAlgorithm k3(SbaConfig{.hops = 3, .history = 2});
    double t2 = 0, t3 = 0;
    for (int i = 0; i < 20; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        t2 += static_cast<double>(k2.broadcast(net.graph, 0, a).forward_count);
        t3 += static_cast<double>(k3.broadcast(net.graph, 0, b).forward_count);
    }
    EXPECT_LE(t3, t2 * 1.05);  // allow small noise, expect no regression
}

TEST(Sba, BackoffDelaysCompletion) {
    const SbaAlgorithm algo(SbaConfig{.backoff_window = 50.0});
    const Graph g = path_graph(5);
    Rng rng(1);
    const auto result = algo.broadcast(g, 0, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_GT(result.completion_time, 4.0);  // flooding would finish at 4
}

TEST(Sba, NameMentionsHops) {
    EXPECT_NE(SbaAlgorithm(SbaConfig{.hops = 3}).name().find("k=3"), std::string::npos);
}

}  // namespace
}  // namespace adhoc
