/// ScaleEngine correctness: the sharded window-synchronous engine must
/// agree with the reference `Simulator` running blind flooding, and its
/// results — including the canonical order digest — must be identical for
/// every worker-thread count and across repeated runs.

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "graph/unit_disk.hpp"
#include "sim/scale_engine.hpp"

namespace adhoc {
namespace {

UnitDiskNetwork make_network(std::size_t n, std::uint64_t seed) {
    UnitDiskParams params;
    params.node_count = n;
    params.average_degree = 6.0;
    Rng gen(seed);
    return generate_network_checked(params, gen);
}

TEST(ScaleEngine, FloodMatchesReferenceSimulator) {
    const UnitDiskNetwork net = make_network(200, 0xab5e11);
    const NodeId source = 7;

    FloodingAlgorithm reference;
    Rng rng(1);
    const BroadcastResult ref = reference.broadcast(net.graph, source, rng);

    ScaleEngine engine(net.graph, {});
    const ScaleResult got = engine.run(source);

    EXPECT_EQ(got.forward_count, ref.forward_count);
    EXPECT_EQ(got.received_count, ref.received_count);
    EXPECT_DOUBLE_EQ(got.completion_time, ref.completion_time);
    EXPECT_TRUE(got.full_delivery);
    // Flooding on a connected graph: everyone forwards once, and every
    // copy a neighbor hears is one delivered event.
    EXPECT_EQ(got.forward_count, net.graph.node_count());
    EXPECT_EQ(got.delivered_events, 2 * net.graph.edge_count());
}

TEST(ScaleEngine, ResultIndependentOfJobs) {
    const UnitDiskNetwork net = make_network(300, 0x70b5);
    ScaleResult results[3];
    const std::size_t jobs[3] = {1, 4, 13};
    for (int i = 0; i < 3; ++i) {
        ScaleConfig cfg;
        cfg.jobs = jobs[i];
        ScaleEngine engine(net.graph, cfg);
        results[i] = engine.run(0);
    }
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(results[i].order_digest, results[0].order_digest) << jobs[i];
        EXPECT_EQ(results[i].delivered_events, results[0].delivered_events) << jobs[i];
        EXPECT_EQ(results[i].forward_count, results[0].forward_count) << jobs[i];
        EXPECT_EQ(results[i].windows, results[0].windows) << jobs[i];
        EXPECT_EQ(results[i].peak_queue_events, results[0].peak_queue_events) << jobs[i];
        EXPECT_DOUBLE_EQ(results[i].completion_time, results[0].completion_time) << jobs[i];
    }
}

TEST(ScaleEngine, RepeatedRunsAreIdentical) {
    const UnitDiskNetwork net = make_network(150, 0x1de3);
    ScaleConfig cfg;
    cfg.jobs = 4;
    ScaleEngine engine(net.graph, cfg);
    const ScaleResult a = engine.run(3);
    const ScaleResult b = engine.run(3);
    EXPECT_EQ(a.order_digest, b.order_digest);
    EXPECT_EQ(a.delivered_events, b.delivered_events);
    EXPECT_EQ(a.forward_count, b.forward_count);
}

TEST(ScaleEngine, WheelCountChangesShardingNotOutcome) {
    const UnitDiskNetwork net = make_network(200, 0x3e11);
    ScaleResult by_wheels[3];
    const std::size_t wheels[3] = {1, 8, 32};
    for (int i = 0; i < 3; ++i) {
        ScaleConfig cfg;
        cfg.wheels = wheels[i];
        cfg.jobs = 2;
        ScaleEngine engine(net.graph, cfg);
        by_wheels[i] = engine.run(5);
    }
    // The digest legitimately depends on the wheel partition (it *is* the
    // merged order), but the physical outcome may not.
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(by_wheels[i].delivered_events, by_wheels[0].delivered_events);
        EXPECT_EQ(by_wheels[i].forward_count, by_wheels[0].forward_count);
        EXPECT_EQ(by_wheels[i].received_count, by_wheels[0].received_count);
        EXPECT_DOUBLE_EQ(by_wheels[i].completion_time, by_wheels[0].completion_time);
    }
}

TEST(ScaleEngine, SelfPruneDeliversEverywhereWithFewerForwards) {
    const UnitDiskNetwork net = make_network(250, 0x5e1f);
    ScaleConfig cfg;
    cfg.policy = ScalePolicy::kSelfPrune;
    ScaleEngine engine(net.graph, cfg);
    const ScaleResult pruned = engine.run(0);
    EXPECT_TRUE(pruned.full_delivery);
    EXPECT_LT(pruned.forward_count, net.graph.node_count());
    EXPECT_GE(pruned.forward_count, 1u);
}

TEST(ScaleEngine, RejectsDegenerateConfig) {
    Graph g(4);
    g.add_edge(0, 1);
    ScaleConfig bad_delay;
    bad_delay.delay = 0.0;
    EXPECT_THROW(ScaleEngine(g, bad_delay), std::invalid_argument);
    ScaleConfig bad_wheels;
    bad_wheels.wheels = 0;
    EXPECT_THROW(ScaleEngine(g, bad_wheels), std::invalid_argument);
}

}  // namespace
}  // namespace adhoc
