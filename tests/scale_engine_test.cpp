/// ScaleEngine correctness: the sharded window-synchronous engine must
/// agree with the reference `Simulator` running blind flooding, and its
/// results — including the canonical order digest — must be identical for
/// every worker-thread count and across repeated runs.
///
/// The generic-coverage differential plane holds the engine to a stricter
/// standard: for every tested (seed × wheels × jobs) point, the forward
/// set (per-node mask), forward count, completion time and the global
/// transmission-order digest must be byte-identical to the serial
/// `Simulator` running `GenericAgent` with the same `GenericConfig` — and
/// the cached-view backend (ViewCache, incremental churn invalidation)
/// must agree bit-for-bit with the scratch-compile backend, including
/// across topology flaps between runs.

#include <gtest/gtest.h>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "core/view_cache.hpp"
#include "graph/unit_disk.hpp"
#include "sim/scale_engine.hpp"

namespace adhoc {
namespace {

UnitDiskNetwork make_network(std::size_t n, std::uint64_t seed) {
    UnitDiskParams params;
    params.node_count = n;
    params.average_degree = 6.0;
    Rng gen(seed);
    return generate_network_checked(params, gen);
}

TEST(ScaleEngine, FloodMatchesReferenceSimulator) {
    const UnitDiskNetwork net = make_network(200, 0xab5e11);
    const NodeId source = 7;

    FloodingAlgorithm reference;
    Rng rng(1);
    const BroadcastResult ref = reference.broadcast(net.graph, source, rng);

    ScaleEngine engine(net.graph, {});
    const ScaleResult got = engine.run(source);

    EXPECT_EQ(got.forward_count, ref.forward_count);
    EXPECT_EQ(got.received_count, ref.received_count);
    EXPECT_DOUBLE_EQ(got.completion_time, ref.completion_time);
    EXPECT_TRUE(got.full_delivery);
    // Flooding on a connected graph: everyone forwards once, and every
    // copy a neighbor hears is one delivered event.
    EXPECT_EQ(got.forward_count, net.graph.node_count());
    EXPECT_EQ(got.delivered_events, 2 * net.graph.edge_count());
}

TEST(ScaleEngine, ResultIndependentOfJobs) {
    const UnitDiskNetwork net = make_network(300, 0x70b5);
    ScaleResult results[3];
    const std::size_t jobs[3] = {1, 4, 13};
    for (int i = 0; i < 3; ++i) {
        ScaleConfig cfg;
        cfg.jobs = jobs[i];
        ScaleEngine engine(net.graph, cfg);
        results[i] = engine.run(0);
    }
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(results[i].order_digest, results[0].order_digest) << jobs[i];
        EXPECT_EQ(results[i].delivered_events, results[0].delivered_events) << jobs[i];
        EXPECT_EQ(results[i].forward_count, results[0].forward_count) << jobs[i];
        EXPECT_EQ(results[i].windows, results[0].windows) << jobs[i];
        EXPECT_EQ(results[i].peak_queue_events, results[0].peak_queue_events) << jobs[i];
        EXPECT_DOUBLE_EQ(results[i].completion_time, results[0].completion_time) << jobs[i];
    }
}

TEST(ScaleEngine, RepeatedRunsAreIdentical) {
    const UnitDiskNetwork net = make_network(150, 0x1de3);
    ScaleConfig cfg;
    cfg.jobs = 4;
    ScaleEngine engine(net.graph, cfg);
    const ScaleResult a = engine.run(3);
    const ScaleResult b = engine.run(3);
    EXPECT_EQ(a.order_digest, b.order_digest);
    EXPECT_EQ(a.delivered_events, b.delivered_events);
    EXPECT_EQ(a.forward_count, b.forward_count);
}

TEST(ScaleEngine, WheelCountChangesShardingNotOutcome) {
    const UnitDiskNetwork net = make_network(200, 0x3e11);
    ScaleResult by_wheels[3];
    const std::size_t wheels[3] = {1, 8, 32};
    for (int i = 0; i < 3; ++i) {
        ScaleConfig cfg;
        cfg.wheels = wheels[i];
        cfg.jobs = 2;
        ScaleEngine engine(net.graph, cfg);
        by_wheels[i] = engine.run(5);
    }
    // The digest legitimately depends on the wheel partition (it *is* the
    // merged order), but the physical outcome may not.
    for (int i = 1; i < 3; ++i) {
        EXPECT_EQ(by_wheels[i].delivered_events, by_wheels[0].delivered_events);
        EXPECT_EQ(by_wheels[i].forward_count, by_wheels[0].forward_count);
        EXPECT_EQ(by_wheels[i].received_count, by_wheels[0].received_count);
        EXPECT_DOUBLE_EQ(by_wheels[i].completion_time, by_wheels[0].completion_time);
    }
}

TEST(ScaleEngine, SelfPruneDeliversEverywhereWithFewerForwards) {
    const UnitDiskNetwork net = make_network(250, 0x5e1f);
    ScaleConfig cfg;
    cfg.policy = ScalePolicy::kSelfPrune;
    ScaleEngine engine(net.graph, cfg);
    const ScaleResult pruned = engine.run(0);
    EXPECT_TRUE(pruned.full_delivery);
    EXPECT_LT(pruned.forward_count, net.graph.node_count());
    EXPECT_GE(pruned.forward_count, 1u);
}

TEST(ScaleEngine, RejectsDegenerateConfig) {
    Graph g(4);
    g.add_edge(0, 1);
    ScaleConfig bad_delay;
    bad_delay.delay = 0.0;
    EXPECT_THROW(ScaleEngine(g, bad_delay), std::invalid_argument);
    ScaleConfig bad_wheels;
    bad_wheels.wheels = 0;
    EXPECT_THROW(ScaleEngine(g, bad_wheels), std::invalid_argument);
    ScaleConfig bad_jobs;
    bad_jobs.jobs = 0;
    EXPECT_THROW(ScaleEngine(g, bad_jobs), std::invalid_argument);
}

// ---- generic coverage differential plane ---------------------------

/// Runs the reference Simulator (serial, event-queue, GenericAgent) and
/// asserts the engine reproduces it byte-for-byte at one (wheels, jobs,
/// view_mode) point: forward mask, counts, completion time, and the
/// transmission-order digest against the trace fold.
void expect_engine_matches_simulator(const Graph& g, NodeId source,
                                     const GenericConfig& gc, std::size_t wheels,
                                     std::size_t jobs, ScaleViewMode mode) {
    GenericBroadcast reference(gc);
    Rng rng(99);  // the honorable axes never draw from it
    const BroadcastResult ref = reference.broadcast_traced(g, source, rng, MediumConfig{});
    const std::uint64_t ref_digest = reference_transmission_digest(ref.trace);

    ScaleConfig cfg;
    cfg.policy = ScalePolicy::kGenericCoverage;
    cfg.generic = gc;
    cfg.wheels = wheels;
    cfg.jobs = jobs;
    cfg.view_mode = mode;
    ScaleEngine engine(g, cfg);
    const ScaleResult got = engine.run(source);

    const auto tag = ::testing::Message()
                     << "wheels=" << wheels << " jobs=" << jobs
                     << " mode=" << static_cast<int>(mode) << " " << gc.summary();
    EXPECT_EQ(engine.forwarded_mask(), ref.transmitted) << tag;
    EXPECT_EQ(engine.received_mask(), ref.received) << tag;
    EXPECT_EQ(got.forward_count, ref.forward_count) << tag;
    EXPECT_EQ(got.received_count, ref.received_count) << tag;
    EXPECT_DOUBLE_EQ(got.completion_time, ref.completion_time) << tag;
    EXPECT_EQ(got.full_delivery, ref.full_delivery) << tag;
    EXPECT_EQ(got.order_digest, ref_digest) << tag;
}

TEST(ScaleEngineGeneric, FirstReceiptMatchesSimulatorAcrossSeedsWheelsJobs) {
    const std::uint64_t seeds[] = {0x11a, 0x22b, 0x33c};
    const std::size_t wheels[] = {1, 3, 8};
    const std::size_t jobs[] = {1, 4};
    const GenericConfig gc = generic_fr_config(2);  // FR/SP/Degree/h=2
    for (const std::uint64_t seed : seeds) {
        const UnitDiskNetwork net = make_network(180, seed);
        const NodeId source = static_cast<NodeId>(seed % net.graph.node_count());
        for (const std::size_t w : wheels) {
            for (const std::size_t j : jobs) {
                expect_engine_matches_simulator(net.graph, source, gc, w, j,
                                                ScaleViewMode::kScratch);
            }
        }
        // Cached backend at one point per seed (the backends are proven
        // equal exhaustively in CachedAndScratchViewsAgree).
        expect_engine_matches_simulator(net.graph, source, gc, 4, 2,
                                        ScaleViewMode::kCached);
    }
}

TEST(ScaleEngineGeneric, StaticTimingMatchesSimulator) {
    const GenericConfig gc = generic_static_config(2);  // Static/SP/NCR
    for (const std::uint64_t seed : {0x44dULL, 0x55eULL}) {
        const UnitDiskNetwork net = make_network(150, seed);
        for (const std::size_t w : {1ULL, 5ULL}) {
            expect_engine_matches_simulator(net.graph, 0, gc, w, 3,
                                            ScaleViewMode::kScratch);
        }
        expect_engine_matches_simulator(net.graph, 0, gc, 8, 1, ScaleViewMode::kCached);
    }
}

TEST(ScaleEngineGeneric, KnobVariationsMatchSimulator) {
    const UnitDiskNetwork net = make_network(160, 0x66f);
    // Sweep the paper's knobs across the honorable subset: view depth,
    // history length, priority scheme, strong vs full coverage.
    GenericConfig hops3 = generic_fr_config(3);
    GenericConfig no_history = generic_fr_config(2);
    no_history.history = 0;
    GenericConfig long_history = generic_fr_config(2);
    long_history.history = 5;
    GenericConfig by_id = generic_fr_config(2, PriorityScheme::kId);
    GenericConfig strong = generic_fr_config(2);
    strong.coverage.strong = true;
    for (const GenericConfig& gc : {hops3, no_history, long_history, by_id, strong}) {
        expect_engine_matches_simulator(net.graph, 9, gc, 6, 4, ScaleViewMode::kScratch);
    }
}

TEST(ScaleEngineGeneric, DigestIndependentOfWheelsAndJobs) {
    // Unlike the per-wheel-fold flood digest, the generic digest is the
    // global transmission order: one value per (graph, source, config).
    const UnitDiskNetwork net = make_network(220, 0x777);
    std::uint64_t first = 0;
    bool have_first = false;
    for (const std::size_t w : {1ULL, 4ULL, 16ULL}) {
        for (const std::size_t j : {1ULL, 8ULL}) {
            ScaleConfig cfg;
            cfg.policy = ScalePolicy::kGenericCoverage;
            cfg.generic = generic_fr_config(2);
            cfg.wheels = w;
            cfg.jobs = j;
            cfg.view_mode = ScaleViewMode::kScratch;
            ScaleEngine engine(net.graph, cfg);
            const ScaleResult r = engine.run(1);
            if (!have_first) {
                first = r.order_digest;
                have_first = true;
            }
            EXPECT_EQ(r.order_digest, first) << "wheels=" << w << " jobs=" << j;
        }
    }
}

TEST(ScaleEngineGeneric, CachedAndScratchViewsAgree) {
    const UnitDiskNetwork net = make_network(200, 0x888);
    ScaleConfig cached_cfg;
    cached_cfg.policy = ScalePolicy::kGenericCoverage;
    cached_cfg.generic = generic_fr_config(2);
    cached_cfg.wheels = 6;
    cached_cfg.jobs = 3;
    cached_cfg.view_mode = ScaleViewMode::kCached;
    ScaleConfig scratch_cfg = cached_cfg;
    scratch_cfg.view_mode = ScaleViewMode::kScratch;

    ScaleEngine cached(net.graph, cached_cfg);
    ScaleEngine scratch(net.graph, scratch_cfg);
    ASSERT_TRUE(cached.cached_views());
    ASSERT_FALSE(scratch.cached_views());

    const ScaleResult a = cached.run(2);
    const ScaleResult b = scratch.run(2);
    EXPECT_EQ(a.order_digest, b.order_digest);
    EXPECT_EQ(a.forward_count, b.forward_count);
    EXPECT_EQ(cached.forwarded_mask(), scratch.forwarded_mask());
    EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
}

TEST(ScaleEngineGeneric, ChurnedEnginesStayEqualAndCacheStaysIncremental) {
    const UnitDiskNetwork net = make_network(240, 0x999);
    const std::size_t n = net.graph.node_count();
    ScaleConfig cached_cfg;
    cached_cfg.policy = ScalePolicy::kGenericCoverage;
    cached_cfg.generic = generic_fr_config(2);
    cached_cfg.wheels = 5;
    cached_cfg.jobs = 2;
    cached_cfg.view_mode = ScaleViewMode::kCached;
    ScaleConfig scratch_cfg = cached_cfg;
    scratch_cfg.view_mode = ScaleViewMode::kScratch;

    ScaleEngine cached(net.graph, cached_cfg);
    ScaleEngine scratch(net.graph, scratch_cfg);

    // Interleave runs with link flaps; after every batch both backends —
    // and a Simulator handed the churned topology — must still agree.
    Rng churn(0xc4u);
    for (int round = 0; round < 4; ++round) {
        for (int f = 0; f < 3; ++f) {
            const NodeId u = static_cast<NodeId>(churn.index(n));
            NodeId v = static_cast<NodeId>(churn.index(n));
            if (u == v) v = (v + 1) % n;
            if (cached.graph().has_edge(u, v)) {
                cached.remove_edge(u, v);
                scratch.remove_edge(u, v);
            } else {
                cached.add_edge(u, v);
                scratch.add_edge(u, v);
            }
        }
        const NodeId source = static_cast<NodeId>(churn.index(n));
        const ScaleResult a = cached.run(source);
        const ScaleResult b = scratch.run(source);
        EXPECT_EQ(a.order_digest, b.order_digest) << "round " << round;
        EXPECT_EQ(cached.forwarded_mask(), scratch.forwarded_mask()) << "round " << round;
        EXPECT_EQ(a.forward_count, b.forward_count) << "round " << round;
        EXPECT_EQ(a.received_count, b.received_count) << "round " << round;

        GenericBroadcast reference(cached_cfg.generic);
        Rng rng(1);
        const BroadcastResult ref =
            reference.broadcast_traced(cached.graph(), source, rng, MediumConfig{});
        EXPECT_EQ(a.order_digest, reference_transmission_digest(ref.trace))
            << "round " << round;
        EXPECT_EQ(cached.forwarded_mask(), ref.transmitted) << "round " << round;
    }
    // The point of the cache: 12 flaps with 2-hop balls must not have
    // recompiled anywhere near all n views per flap.
    ASSERT_NE(cached.view_cache(), nullptr);
    EXPECT_GT(cached.view_cache()->recompile_count(), 0u);
    EXPECT_LT(cached.view_cache()->recompile_count(), 12u * n);
}

TEST(ScaleEngineGeneric, RejectsUnhonorableGenericKnobs) {
    Graph g(8);
    for (NodeId v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1);
    ScaleConfig cfg;
    cfg.policy = ScalePolicy::kGenericCoverage;

    cfg.generic = generic_frb_config(2);  // backoff needs timers + RNG
    EXPECT_THROW(ScaleEngine(g, cfg), std::invalid_argument);
    cfg.generic = generic_frbd_config(2);
    EXPECT_THROW(ScaleEngine(g, cfg), std::invalid_argument);

    cfg.generic = generic_fr_config(2);
    cfg.generic.selection = Selection::kNeighborDesignating;
    EXPECT_THROW(ScaleEngine(g, cfg), std::invalid_argument);

    cfg.generic = generic_fr_config(2);
    cfg.generic.hops = 0;  // global views
    EXPECT_THROW(ScaleEngine(g, cfg), std::invalid_argument);

    cfg.generic = generic_fr_config(2);  // honorable again: must construct
    EXPECT_NO_THROW(ScaleEngine(g, cfg));
}

}  // namespace
}  // namespace adhoc
