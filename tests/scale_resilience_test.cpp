/// \file scale_resilience_test.cpp
/// \brief Fault-tolerant scale plane: `ScaleEngine` under a `FaultPlan`
/// (and optionally the windowed recovery mirror) must reproduce
/// `Simulator::broadcast_resilient` byte-for-byte — delivery and forward
/// masks, every fault/recovery counter, completion time, outcome
/// classification and the transmission-order digest — across seeds ×
/// wheels {1, 3, 8} × jobs {1, 4}, for flooding, generic static/FR and
/// self-pruning.  Plus: clean termination when everything crashes,
/// partition classification on a cut vertex, wheels/jobs invariance of the
/// realism mode (`churn_updates_views`), and the validation surface of
/// `attach_faults` / `set_recovery`.

#include <gtest/gtest.h>

#include <optional>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "faults/recovery.hpp"
#include "graph/unit_disk.hpp"
#include "sim/packet.hpp"
#include "sim/scale_engine.hpp"

namespace adhoc {
namespace {

using faults::DeliveryOutcome;
using faults::FaultKind;
using faults::FaultPlan;
using faults::FaultSpec;
using faults::RecoveryConfig;
using faults::ResilienceSummary;

UnitDiskNetwork make_network(std::size_t n, std::uint64_t seed) {
    UnitDiskParams params;
    params.node_count = n;
    params.average_degree = 6.0;
    Rng gen(seed);
    return generate_network_checked(params, gen);
}

/// A window-aligned recovery config (the RecoveryConfig{} default
/// nack_delay = 0.5 is not a multiple of the engine's delay 1.0).
RecoveryConfig aligned_recovery() {
    RecoveryConfig rc;
    rc.nack_delay = 1.0;
    return rc;
}

RecoveryConfig recovery_off() {
    RecoveryConfig rc;
    rc.enabled = false;
    return rc;
}

FaultPlan crash_plan(const Graph& g, NodeId source, std::uint64_t seed) {
    FaultSpec spec;
    spec.crash_rate = 0.15;
    spec.crash_window = 6.0;
    return faults::make_fault_plan(spec, g, source, seed, 0);
}

FaultPlan churn_plan(const Graph& g, NodeId source, std::uint64_t seed) {
    FaultSpec spec;
    spec.crash_rate = 0.08;
    spec.crash_window = 5.0;
    spec.link_churn_rate = 0.3;
    spec.churn_window = 8.0;
    return faults::make_fault_plan(spec, g, source, seed, 1);
}

FaultPlan lossy_plan(const Graph& g, NodeId source, std::uint64_t seed) {
    FaultSpec spec;
    spec.crash_rate = 0.05;
    spec.asymmetry_rate = 0.5;
    spec.asymmetry_loss_max = 0.9;
    return faults::make_fault_plan(spec, g, source, seed, 2);
}

/// Sim-side twin of ScalePolicy::kSelfPrune: on first receipt, forward iff
/// N(v) is not covered by N(u) u {u}.
class SelfPruneAgent : public Agent {
  public:
    explicit SelfPruneAgent(const Graph& g) : g_(&g), seen_(g.node_count(), 0) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        seen_[source] = 1;
        sim.transmit(source, chain_state(BroadcastState{}, source, {}, 1));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx,
                    Rng& /*rng*/) override {
        if (seen_[node]) return;
        seen_[node] = 1;
        if (!covered(node, tx.sender)) {
            sim.transmit(node, chain_state(tx.state, node, {}, 1));
        }
    }

  private:
    [[nodiscard]] bool covered(NodeId v, NodeId u) const {
        const auto nu = g_->neighbors(u);
        auto it = nu.begin();
        for (NodeId x : g_->neighbors(v)) {
            if (x == u) continue;
            while (it != nu.end() && *it < x) ++it;
            if (it == nu.end() || *it != x) return false;
        }
        return true;
    }

    const Graph* g_;
    std::vector<char> seen_;
};

class SelfPruneAlgorithm : public BroadcastAlgorithm {
  public:
    [[nodiscard]] std::string name() const override { return "SelfPrune"; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override {
        return std::make_unique<SelfPruneAgent>(g);
    }
};

/// Runs the reference resilient Simulator once, then asserts the engine
/// reproduces it byte-for-byte at every (wheels, jobs) grid point.
void expect_resilient_match(const BroadcastAlgorithm& algo, const Graph& g,
                            NodeId source, ScalePolicy policy,
                            const GenericConfig* gc, const FaultPlan& plan,
                            const RecoveryConfig& recovery) {
    Rng rng(99);  // the honorable axes never draw from it
    const ResilientResult ref = algo.broadcast_resilient(
        g, source, rng, MediumConfig{}, plan, recovery, /*trace=*/true);
    const std::uint64_t ref_digest = reference_transmission_digest(ref.result.trace);

    for (const std::size_t wheels : {1, 3, 8}) {
        for (const std::size_t jobs : {1, 4}) {
            ScaleConfig cfg;
            cfg.policy = policy;
            if (gc != nullptr) cfg.generic = *gc;
            cfg.wheels = wheels;
            cfg.jobs = jobs;
            cfg.view_mode = ScaleViewMode::kScratch;
            ScaleEngine engine(g, cfg);
            engine.attach_faults(&plan);
            engine.set_recovery(recovery);
            const ScaleResult got = engine.run(source);

            const auto tag = ::testing::Message()
                             << algo.name() << " wheels=" << wheels
                             << " jobs=" << jobs << " recovery="
                             << (recovery.enabled ? "on" : "off");
            EXPECT_EQ(engine.received_mask(), ref.result.received) << tag;
            EXPECT_EQ(engine.forwarded_mask(), ref.result.transmitted) << tag;
            EXPECT_EQ(got.forward_count, ref.result.forward_count) << tag;
            EXPECT_EQ(got.received_count, ref.result.received_count) << tag;
            EXPECT_EQ(got.completion_time, ref.result.completion_time) << tag;
            EXPECT_EQ(got.full_delivery, ref.result.full_delivery) << tag;
            EXPECT_EQ(got.retransmit_count, ref.result.retransmit_count) << tag;
            EXPECT_EQ(got.control_count, ref.result.control_count) << tag;
            EXPECT_EQ(got.fault_suppressed, ref.result.fault_suppressed) << tag;
            EXPECT_EQ(got.down, ref.result.down) << tag;
            EXPECT_EQ(got.order_digest, ref_digest) << tag;

            const ResilienceSummary sum =
                faults::classify_outcome(g, source, engine.received_mask(), plan);
            EXPECT_EQ(sum.outcome, ref.summary.outcome) << tag;
            EXPECT_EQ(sum.up_count, ref.summary.up_count) << tag;
            EXPECT_EQ(sum.reachable_count, ref.summary.reachable_count) << tag;
            EXPECT_EQ(sum.delivered_up, ref.summary.delivered_up) << tag;
            EXPECT_EQ(sum.missed_reachable, ref.summary.missed_reachable) << tag;
            EXPECT_EQ(sum.delivery_ratio, ref.summary.delivery_ratio) << tag;
        }
    }
}

TEST(ScaleResilience, FloodMatchesResilientSimulator) {
    const FloodingAlgorithm flood;
    for (const std::uint64_t seed : {0x11aULL, 0x22bULL}) {
        const UnitDiskNetwork net = make_network(140, seed);
        const NodeId source = static_cast<NodeId>(seed % net.graph.node_count());
        for (auto make :
             {&crash_plan, &churn_plan, &lossy_plan}) {
            const FaultPlan plan = make(net.graph, source, seed);
            expect_resilient_match(flood, net.graph, source, ScalePolicy::kFlood,
                                   nullptr, plan, recovery_off());
            expect_resilient_match(flood, net.graph, source, ScalePolicy::kFlood,
                                   nullptr, plan, aligned_recovery());
        }
    }
}

TEST(ScaleResilience, GenericFirstReceiptMatchesResilientSimulator) {
    const GenericConfig gc = generic_fr_config(2);  // FR/SP/Degree/h=2
    const GenericBroadcast generic(gc, "Generic FR");
    for (const std::uint64_t seed : {0x33cULL, 0x44dULL}) {
        const UnitDiskNetwork net = make_network(140, seed);
        const NodeId source = static_cast<NodeId>(seed % net.graph.node_count());
        for (auto make : {&churn_plan, &lossy_plan}) {
            const FaultPlan plan = make(net.graph, source, seed);
            expect_resilient_match(generic, net.graph, source,
                                   ScalePolicy::kGenericCoverage, &gc, plan,
                                   recovery_off());
            expect_resilient_match(generic, net.graph, source,
                                   ScalePolicy::kGenericCoverage, &gc, plan,
                                   aligned_recovery());
        }
    }
}

TEST(ScaleResilience, GenericStaticMatchesResilientSimulator) {
    const GenericConfig gc = generic_static_config(2);  // Static/SP/NCR
    const GenericBroadcast generic(gc, "Generic Static");
    const UnitDiskNetwork net = make_network(130, 0x55e);
    const FaultPlan plan = churn_plan(net.graph, 0, 0x55e);
    expect_resilient_match(generic, net.graph, 0, ScalePolicy::kGenericCoverage,
                           &gc, plan, recovery_off());
    expect_resilient_match(generic, net.graph, 0, ScalePolicy::kGenericCoverage,
                           &gc, plan, aligned_recovery());
}

TEST(ScaleResilience, SelfPruneMatchesResilientSimulator) {
    const SelfPruneAlgorithm sp;
    const UnitDiskNetwork net = make_network(130, 0x66f);
    for (auto make : {&crash_plan, &lossy_plan}) {
        const FaultPlan plan = make(net.graph, 3, 0x66f);
        expect_resilient_match(sp, net.graph, 3, ScalePolicy::kSelfPrune, nullptr,
                               plan, recovery_off());
        expect_resilient_match(sp, net.graph, 3, ScalePolicy::kSelfPrune, nullptr,
                               plan, aligned_recovery());
    }
}

TEST(ScaleResilience, RecoveryHealsCrashRecoverGapOnEngine) {
    // Path 0-1-2, node 2 down while the packet passes, up again later.
    // Without recovery the engine strands it; with the windowed NACK mirror
    // a beacon → NACK → repair fills the gap, exactly as in recovery_test.
    Graph g = path_graph(3);
    FaultPlan plan;
    plan.events = {{0.5, FaultKind::kNodeCrash, 2, Edge{}},
                   {3.0, FaultKind::kNodeRecover, 2, Edge{}}};

    ScaleConfig cfg;
    ScaleEngine bare(g, cfg);
    bare.attach_faults(&plan);
    bare.set_recovery(recovery_off());
    const ScaleResult without = bare.run(0);
    EXPECT_FALSE(static_cast<bool>(bare.received_mask()[2]));
    EXPECT_EQ(without.retransmit_count, 0u);

    ScaleEngine healed(g, cfg);
    healed.attach_faults(&plan);
    healed.set_recovery(aligned_recovery());
    const ScaleResult with = healed.run(0);
    EXPECT_TRUE(static_cast<bool>(healed.received_mask()[2]));
    EXPECT_GE(with.retransmit_count, 1u);
    EXPECT_GE(with.control_count, 1u);
    const ResilienceSummary sum =
        faults::classify_outcome(g, 0, healed.received_mask(), plan);
    EXPECT_EQ(sum.outcome, DeliveryOutcome::kDelivered);
}

TEST(ScaleResilience, CrashEverythingTerminatesCleanly) {
    // Every node (source included) dies before the first delivery window:
    // all deliveries and every armed beacon are suppressed, all budgets
    // stay bounded, and the run drains — hanging IS the failure mode.
    const UnitDiskNetwork net = make_network(80, 0x777);
    const std::size_t n = net.graph.node_count();
    FaultPlan plan;
    for (NodeId v = 0; v < n; ++v) {
        plan.events.push_back({0.5, FaultKind::kNodeCrash, v, Edge{}});
    }
    ScaleConfig cfg;
    cfg.wheels = 3;
    ScaleEngine engine(net.graph, cfg);
    engine.attach_faults(&plan);
    engine.set_recovery(aligned_recovery());
    const ScaleResult r = engine.run(0);
    EXPECT_EQ(r.received_count, 1u);  // only the source's own begin-transmit
    EXPECT_EQ(r.retransmit_count, 0u);
    EXPECT_EQ(r.control_count, 0u);
    EXPECT_GE(r.fault_suppressed, net.graph.neighbors(0).size());
    for (NodeId v = 0; v < n; ++v) {
        EXPECT_TRUE(static_cast<bool>(r.down[v])) << "node " << v;
    }
}

TEST(ScaleResilience, BridgeCrashClassifiesAsPartitionedOnEngine) {
    // Two K4 cliques joined by bridge 3-4; node 3 dies before the packet
    // crosses.  Same fixture and verdict as resilience_partition_test.
    Graph g(8);
    for (NodeId u = 0; u < 4; ++u) {
        for (NodeId v = u + 1; v < 4; ++v) {
            g.add_edge(u, v);
            g.add_edge(4 + u, 4 + v);
        }
    }
    g.add_edge(3, 4);
    FaultPlan plan;
    plan.events = {{0.5, FaultKind::kNodeCrash, 3, Edge{}}};

    ScaleEngine engine(g, ScaleConfig{});
    engine.attach_faults(&plan);
    engine.set_recovery(aligned_recovery());
    const ScaleResult r = engine.run(0);
    const ResilienceSummary sum =
        faults::classify_outcome(g, 0, engine.received_mask(), plan);
    EXPECT_EQ(sum.outcome, DeliveryOutcome::kPartitioned);
    EXPECT_EQ(sum.up_count, 7u);
    EXPECT_EQ(sum.reachable_count, 3u);
    EXPECT_EQ(sum.missed_reachable, 0u);
    EXPECT_DOUBLE_EQ(sum.delivery_ratio, 1.0);
    EXPECT_EQ(r.retransmit_count, 0u);  // nothing NACKs across the cut
}

TEST(ScaleResilience, ChurnUpdatesViewsInvariantAcrossWheelsJobsAndBackends) {
    // The realism mode deviates from the reference Simulator by design
    // (views and fanout track churn), but it must still be a pure function
    // of (graph, plan, config): byte-identical across wheels × jobs and
    // between the cached and scratch view backends.
    const UnitDiskNetwork net = make_network(150, 0x888);
    const FaultPlan plan = churn_plan(net.graph, 2, 0x888);
    std::optional<ScaleResult> first;
    std::vector<char> first_forwarded;
    for (const ScaleViewMode mode : {ScaleViewMode::kScratch, ScaleViewMode::kCached}) {
        for (const std::size_t wheels : {1, 3, 8}) {
            for (const std::size_t jobs : {1, 4}) {
                ScaleConfig cfg;
                cfg.policy = ScalePolicy::kGenericCoverage;
                cfg.generic = generic_fr_config(2);
                cfg.wheels = wheels;
                cfg.jobs = jobs;
                cfg.view_mode = mode;
                cfg.churn_updates_views = true;
                ScaleEngine engine(net.graph, cfg);
                engine.attach_faults(&plan);
                const ScaleResult got = engine.run(2);
                const auto tag = ::testing::Message()
                                 << "mode=" << static_cast<int>(mode)
                                 << " wheels=" << wheels << " jobs=" << jobs;
                if (!first) {
                    first = got;
                    first_forwarded = engine.forwarded_mask();
                    continue;
                }
                EXPECT_EQ(got.order_digest, first->order_digest) << tag;
                EXPECT_EQ(got.forward_count, first->forward_count) << tag;
                EXPECT_EQ(got.received_count, first->received_count) << tag;
                EXPECT_EQ(got.completion_time, first->completion_time) << tag;
                EXPECT_EQ(got.fault_suppressed, first->fault_suppressed) << tag;
                EXPECT_EQ(engine.forwarded_mask(), first_forwarded) << tag;
            }
        }
    }
}

TEST(ScaleResilience, RepeatedFaultedRunsAreIdentical) {
    const UnitDiskNetwork net = make_network(120, 0x999);
    const FaultPlan plan = lossy_plan(net.graph, 1, 0x999);
    ScaleConfig cfg;
    cfg.policy = ScalePolicy::kGenericCoverage;
    cfg.generic = generic_fr_config(2);
    cfg.wheels = 4;
    cfg.jobs = 2;
    ScaleEngine engine(net.graph, cfg);
    engine.attach_faults(&plan);
    engine.set_recovery(aligned_recovery());
    const ScaleResult a = engine.run(1);
    const std::vector<char> mask_a = engine.received_mask();
    const ScaleResult b = engine.run(1);
    EXPECT_EQ(a.order_digest, b.order_digest);
    EXPECT_EQ(a.retransmit_count, b.retransmit_count);
    EXPECT_EQ(a.control_count, b.control_count);
    EXPECT_EQ(a.fault_suppressed, b.fault_suppressed);
    EXPECT_EQ(mask_a, engine.received_mask());
}

TEST(ScaleResilience, RejectsInvalidPlansAndMisalignedRecovery) {
    Graph g(6);
    for (NodeId v = 0; v + 1 < 6; ++v) g.add_edge(v, v + 1);
    ScaleEngine engine(g, ScaleConfig{});

    FaultPlan bad;  // recover without a preceding crash
    bad.events = {{1.0, FaultKind::kNodeRecover, 2, Edge{}}};
    EXPECT_THROW(engine.attach_faults(&bad), std::invalid_argument);

    FaultPlan far;  // past the 2^20-window calendar horizon
    far.events = {{0.5, FaultKind::kNodeCrash, 2, Edge{}},
                  {2.0e6, FaultKind::kNodeRecover, 2, Edge{}}};
    EXPECT_THROW(engine.attach_faults(&far), std::invalid_argument);

    EXPECT_THROW(engine.set_recovery(RecoveryConfig{}),  // nack_delay = 0.5
                 std::invalid_argument);
    RecoveryConfig frac = aligned_recovery();
    frac.beacon_interval = 0.7;
    EXPECT_THROW(engine.set_recovery(frac), std::invalid_argument);
    RecoveryConfig soft = aligned_recovery();
    soft.backoff_factor = 1.5;  // timers would drift off window boundaries
    EXPECT_THROW(engine.set_recovery(soft), std::invalid_argument);
    EXPECT_NO_THROW(engine.set_recovery(aligned_recovery()));

    FaultPlan ok;  // a valid plan still attaches after the failed attempts
    ok.events = {{0.5, FaultKind::kNodeCrash, 2, Edge{}}};
    EXPECT_NO_THROW(engine.attach_faults(&ok));
    EXPECT_NO_THROW(engine.attach_faults(nullptr));
}

}  // namespace
}  // namespace adhoc
