// Property test: the hybrid heap/calendar EventQueue realizes the exact
// (time, seq) total order of the historical std::priority_queue scheduler.
//
// A reference binary heap with the same comparator is driven through an
// identical randomized operation stream (pushes, pops, clears — heavy
// enough to force the calendar migration, rebuilds, and the shrink path)
// and every popped event must match field-for-field, including FIFO order
// among equal timestamps.

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

namespace adhoc {
namespace {

// The pre-calendar scheduler, verbatim: std::priority_queue on (time, seq).
class ReferenceQueue {
  public:
    void push(double time, EventKind kind, NodeId node, std::size_t payload) {
        heap_.push(Event{time, next_seq_++, kind, node, payload});
    }
    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const { return heap_.size(); }
    [[nodiscard]] const Event& peek() const { return heap_.top(); }
    Event pop() {
        Event e = heap_.top();
        heap_.pop();
        return e;
    }
    void clear() {
        heap_ = {};
        next_seq_ = 0;
    }

  private:
    std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
    std::uint64_t next_seq_ = 0;
};

void expect_same_event(const Event& got, const Event& want, std::size_t op) {
    ASSERT_EQ(got.time, want.time) << "op " << op;
    ASSERT_EQ(got.seq, want.seq) << "op " << op;
    ASSERT_EQ(got.kind, want.kind) << "op " << op;
    ASSERT_EQ(got.node, want.node) << "op " << op;
    ASSERT_EQ(got.payload, want.payload) << "op " << op;
}

TEST(SchedulerEquivalence, RandomMixedOpsMatchReferenceHeap) {
    std::mt19937_64 rng(0x5ca1ab1e);
    std::uniform_real_distribution<double> jitter(0.0, 4.0);
    std::uniform_int_distribution<int> op_dist(0, 99);
    std::uniform_int_distribution<int> tie_dist(0, 7);
    std::uniform_int_distribution<int> kind_dist(0, 3);

    EventQueue q;
    ReferenceQueue ref;
    double clock = 0.0;
    constexpr std::size_t kOps = 100000;

    for (std::size_t op = 0; op < kOps; ++op) {
        const int roll = op_dist(rng);
        if (roll < 55) {
            // Push, biased toward near-future times with frequent exact
            // ties (tie_dist quantizes) to exercise FIFO resolution.
            const double t = clock + static_cast<double>(tie_dist(rng)) +
                             (tie_dist(rng) == 0 ? 0.0 : jitter(rng));
            const auto kind = static_cast<EventKind>(kind_dist(rng));
            const auto node = static_cast<NodeId>(op % 4096);
            q.push(t, kind, node, op);
            ref.push(t, kind, node, op);
        } else if (roll < 97) {
            ASSERT_EQ(q.empty(), ref.empty());
            ASSERT_EQ(q.size(), ref.size());
            if (ref.empty()) continue;
            expect_same_event(q.peek(), ref.peek(), op);
            const Event got = q.pop();
            const Event want = ref.pop();
            expect_same_event(got, want, op);
            clock = want.time;  // monotone sim clock, like the simulator loop
        } else {
            q.clear();
            ref.clear();
            clock = 0.0;
        }
    }

    // Drain whatever is left — full suffix must match too.
    ASSERT_EQ(q.size(), ref.size());
    std::size_t op = kOps;
    while (!ref.empty()) {
        expect_same_event(q.pop(), ref.pop(), op++);
    }
    EXPECT_TRUE(q.empty());
}

TEST(SchedulerEquivalence, SustainedLargeBacklogMatches) {
    // Hold >>threshold events so the queue lives in calendar mode for the
    // whole run, including bucket-count grow rebuilds.
    std::mt19937_64 rng(42);
    std::uniform_real_distribution<double> gap(0.0, 1.0);

    EventQueue q;
    ReferenceQueue ref;
    double clock = 0.0;
    for (std::size_t i = 0; i < 20000; ++i) {
        const double t = clock + gap(rng) * 16.0;
        q.push(t, EventKind::kDelivery, static_cast<NodeId>(i), i);
        ref.push(t, EventKind::kDelivery, static_cast<NodeId>(i), i);
    }
    // Steady state: pop one, push two descendants, then drain.
    for (std::size_t i = 0; i < 30000; ++i) {
        const Event want = ref.pop();
        expect_same_event(q.pop(), want, i);
        clock = want.time;
        for (int c = 0; c < 2 && i < 15000; ++c) {
            const double t = clock + 1.0 + gap(rng);
            q.push(t, EventKind::kTimer, want.node, i);
            ref.push(t, EventKind::kTimer, want.node, i);
        }
    }
    ASSERT_EQ(q.size(), ref.size());
    std::size_t op = 0;
    while (!ref.empty()) expect_same_event(q.pop(), ref.pop(), op++);
}

TEST(SchedulerEquivalence, SparseFarFutureEventsMatch) {
    // Events spread over a huge time range relative to the bucket width
    // forces the direct-search fallback after empty year scans.
    EventQueue q;
    ReferenceQueue ref;
    // Dense cluster to trigger migration with a small width estimate...
    for (std::size_t i = 0; i < 6000; ++i) {
        const double t = static_cast<double>(i) * 1e-3;
        q.push(t, EventKind::kTimer, 0, i);
        ref.push(t, EventKind::kTimer, 0, i);
    }
    // ...plus far-future outliers that land many "years" ahead.
    for (std::size_t i = 0; i < 64; ++i) {
        const double t = 1e6 + static_cast<double>(i) * 1e5;
        q.push(t, EventKind::kFault, 1, i);
        ref.push(t, EventKind::kFault, 1, i);
    }
    std::size_t op = 0;
    while (!ref.empty()) expect_same_event(q.pop(), ref.pop(), op++);
    EXPECT_TRUE(q.empty());
}

TEST(SchedulerEquivalence, ClearResetsSequenceAndKeepsWorking) {
    EventQueue q;
    for (std::size_t i = 0; i < 10000; ++i) {
        q.push(static_cast<double>(i % 97), EventKind::kTimer, 0, i);
    }
    q.clear();
    EXPECT_TRUE(q.empty());
    // Sequence restarts at zero, exactly like the old scheduler.
    q.push(1.0, EventKind::kTimer, 3, 9);
    EXPECT_EQ(q.peek().seq, 0u);
    EXPECT_EQ(q.pop().node, 3u);
}

}  // namespace
}  // namespace adhoc
