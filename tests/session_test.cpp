// Unit tests for multi-broadcast sessions and the steppable simulator API.

#include "sim/session.hpp"

#include <gtest/gtest.h>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

std::unique_ptr<Agent> fr_agent(const Graph& g) {
    return std::make_unique<GenericAgent>(g, generic_fr_config(2));
}

TEST(SteppableSimulator, StepByStepEqualsRun) {
    const Graph g = grid_graph(4, 4);
    GenericAgent a1(g, generic_fr_config(2));
    GenericAgent a2(g, generic_fr_config(2));
    Rng r1(5), r2(5);

    Simulator whole(g);
    const auto expected = whole.run(3, a1, r1);

    Simulator stepped(g);
    stepped.begin(3, a2, r2);
    std::size_t steps = 0;
    while (stepped.has_pending()) {
        EXPECT_GE(stepped.next_time(), stepped.now());
        stepped.step();
        ++steps;
    }
    const auto actual = stepped.finish();
    EXPECT_GT(steps, 0u);
    EXPECT_EQ(actual.transmitted, expected.transmitted);
    EXPECT_DOUBLE_EQ(actual.completion_time, expected.completion_time);
}

TEST(SteppableSimulator, StartTimeOffsetsClock) {
    const Graph g = path_graph(3);
    GenericAgent agent(g, generic_fr_config(2));
    Rng rng(1);
    Simulator sim(g);
    sim.begin(0, agent, rng, /*start_time=*/10.0);
    while (sim.has_pending()) sim.step();
    const auto result = sim.finish();
    EXPECT_GE(result.completion_time, 10.0);
    EXPECT_TRUE(result.full_delivery);
}

TEST(Session, SingleRequestEqualsStandaloneRun) {
    const Graph g = grid_graph(4, 5);
    std::vector<BroadcastRequest> reqs;
    reqs.push_back({2, 0.0, fr_agent(g)});
    Rng rng(9);
    const auto session = run_session(g, std::move(reqs), rng);
    ASSERT_EQ(session.broadcasts.size(), 1u);

    GenericAgent agent(g, generic_fr_config(2));
    Simulator sim(g);
    Rng iso(1);
    const auto standalone = sim.run(2, agent, iso);
    EXPECT_EQ(session.broadcasts[0].transmitted, standalone.transmitted);
}

TEST(Session, ConcurrentBroadcastsAreIndependent) {
    // Collision-free medium: interleaved broadcasts must produce exactly
    // the same per-broadcast outcomes as isolated runs.
    Rng gen(331);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, gen);

    const std::vector<NodeId> sources{0, 17, 33};
    std::vector<BroadcastRequest> reqs;
    for (std::size_t i = 0; i < sources.size(); ++i) {
        reqs.push_back({sources[i], static_cast<double>(i), fr_agent(net.graph)});
    }
    Rng rng(7);
    const auto session = run_session(net.graph, std::move(reqs), rng);
    ASSERT_EQ(session.broadcasts.size(), 3u);

    for (std::size_t i = 0; i < sources.size(); ++i) {
        GenericAgent agent(net.graph, generic_fr_config(2));
        Simulator sim(net.graph);
        Rng iso(1);
        const auto standalone = sim.run(sources[i], agent, iso);
        EXPECT_EQ(session.broadcasts[i].transmitted, standalone.transmitted)
            << "broadcast " << i;
        EXPECT_TRUE(session.broadcasts[i].full_delivery) << i;
        EXPECT_TRUE(check_broadcast(net.graph, sources[i], session.broadcasts[i]).ok()) << i;
    }
}

TEST(Session, StaggeredStartTimesRespected) {
    const Graph g = path_graph(5);
    std::vector<BroadcastRequest> reqs;
    reqs.push_back({0, 0.0, fr_agent(g)});
    reqs.push_back({4, 100.0, fr_agent(g)});
    Rng rng(3);
    const auto session = run_session(g, std::move(reqs), rng);
    EXPECT_LT(session.broadcasts[0].completion_time, 100.0);
    EXPECT_GE(session.broadcasts[1].completion_time, 100.0);
    EXPECT_DOUBLE_EQ(session.completion_time, session.broadcasts[1].completion_time);
}

TEST(Session, ManyBroadcastsAllCover) {
    Rng gen(337);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, gen);
    std::vector<BroadcastRequest> reqs;
    for (NodeId s = 0; s < 10; ++s) {
        reqs.push_back({s, static_cast<double>(s) * 0.5, fr_agent(net.graph)});
    }
    Rng rng(11);
    const auto session = run_session(net.graph, std::move(reqs), rng);
    for (const auto& b : session.broadcasts) EXPECT_TRUE(b.full_delivery);
}

}  // namespace
}  // namespace adhoc
