// Unit tests for the discrete-event simulator core.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

/// Agent that floods (forwards every first receipt) — enough to exercise
/// the simulator mechanics in isolation from protocol logic.
class RelayAll final : public Agent {
  public:
    explicit RelayAll(std::size_t n) : seen_(n, 0) {}
    void start(Simulator& sim, NodeId source, Rng&) override {
        seen_[source] = 1;
        sim.transmit(source, {});
    }
    void on_receive(Simulator& sim, NodeId node, const Transmission&, Rng&) override {
        if (seen_[node]) return;
        seen_[node] = 1;
        sim.transmit(node, {});
    }

  private:
    std::vector<char> seen_;
};

/// Agent where only the source transmits.
class SourceOnly final : public Agent {
  public:
    void start(Simulator& sim, NodeId source, Rng&) override { sim.transmit(source, {}); }
    void on_receive(Simulator&, NodeId, const Transmission&, Rng&) override {}
};

/// Agent that abuses transmit twice to verify idempotence.
class DoubleSender final : public Agent {
  public:
    void start(Simulator& sim, NodeId source, Rng&) override {
        sim.transmit(source, {});
        sim.transmit(source, {});
    }
    void on_receive(Simulator&, NodeId, const Transmission&, Rng&) override {}
};

/// Agent exercising timers: source transmits only after two chained timers.
class TimerChain final : public Agent {
  public:
    void start(Simulator& sim, NodeId, Rng&) override {
        sim.schedule_timer(0, 1.0, /*timer_kind=*/1);
    }
    void on_receive(Simulator&, NodeId, const Transmission&, Rng&) override {}
    void on_timer(Simulator& sim, NodeId node, std::size_t kind, Rng&) override {
        if (kind == 1) {
            EXPECT_DOUBLE_EQ(sim.now(), 1.0);
            sim.schedule_timer(node, 2.5, /*timer_kind=*/2);
        } else {
            EXPECT_DOUBLE_EQ(sim.now(), 3.5);
            sim.transmit(node, {});
        }
    }
};

TEST(Simulator, FloodReachesEveryone) {
    const Graph g = path_graph(5);
    Simulator sim(g);
    RelayAll agent(5);
    Rng rng(1);
    const auto result = sim.run(0, agent, rng);
    EXPECT_TRUE(result.full_delivery);
    EXPECT_EQ(result.forward_count, 5u);
    EXPECT_EQ(result.received_count, 5u);
    // Path of 5: the far end transmits at t=4; its (redundant) delivery
    // back to node 3 is the final event at t=5.
    EXPECT_DOUBLE_EQ(result.completion_time, 5.0);
}

TEST(Simulator, SourceOnlyCoversNeighborsOnly) {
    const Graph g = star_graph(4);
    Simulator sim(g);
    SourceOnly agent;
    Rng rng(1);
    const auto result = sim.run(0, agent, rng);
    EXPECT_TRUE(result.full_delivery);  // star center covers all
    EXPECT_EQ(result.forward_count, 1u);

    const Graph p = path_graph(4);
    Simulator sim2(p);
    const auto r2 = sim2.run(0, agent, rng);
    EXPECT_FALSE(r2.full_delivery);
    EXPECT_EQ(r2.received_count, 2u);  // source + neighbor
}

TEST(Simulator, TransmitIsIdempotent) {
    const Graph g = path_graph(3);
    Simulator sim(g);
    DoubleSender agent;
    Rng rng(1);
    const auto result = sim.run(0, agent, rng);
    EXPECT_EQ(result.forward_count, 1u);
    // Neighbor 1 received exactly one copy: one delivery event.
    EXPECT_EQ(result.received_count, 2u);
}

TEST(Simulator, TimerChainAdvancesClock) {
    const Graph g = path_graph(2);
    Simulator sim(g);
    TimerChain agent;
    Rng rng(1);
    const auto result = sim.run(0, agent, rng);
    EXPECT_EQ(result.forward_count, 1u);
    EXPECT_DOUBLE_EQ(result.completion_time, 4.5);  // tx at 3.5 + 1 hop
}

TEST(Simulator, TraceRecordsTransmitAndReceive) {
    const Graph g = path_graph(3);
    Simulator sim(g);
    sim.enable_trace();
    RelayAll agent(3);
    Rng rng(1);
    const auto result = sim.run(0, agent, rng);
    EXPECT_EQ(result.trace.count(TraceKind::kTransmit), 3u);
    // Deliveries: 0->1, 1->{0,2}, 2->1 = 4 receive events.
    EXPECT_EQ(result.trace.count(TraceKind::kReceive), 4u);
}

TEST(Simulator, LossyMediumDropsDeliveries) {
    const Graph g = path_graph(4);
    MediumConfig medium;
    medium.loss_probability = 1.0;  // every link drops
    Simulator sim(g, medium);
    RelayAll agent(4);
    Rng rng(1);
    const auto result = sim.run(0, agent, rng);
    EXPECT_EQ(result.forward_count, 1u);  // only the source ever held the packet
    EXPECT_EQ(result.received_count, 1u);
    EXPECT_FALSE(result.full_delivery);
}

TEST(Simulator, JitterDelaysDeliveries) {
    const Graph g = path_graph(2);
    MediumConfig medium;
    medium.jitter = 5.0;
    Simulator sim(g, medium);
    SourceOnly agent;
    Rng rng(7);
    const auto result = sim.run(0, agent, rng);
    EXPECT_GE(result.completion_time, 1.0);
    EXPECT_LE(result.completion_time, 6.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
    const Graph g = grid_graph(3, 3);
    RelayAll a1(9), a2(9);
    Simulator s1(g), s2(g);
    Rng r1(5), r2(5);
    const auto x = s1.run(4, a1, r1);
    const auto y = s2.run(4, a2, r2);
    EXPECT_EQ(x.transmitted, y.transmitted);
    EXPECT_DOUBLE_EQ(x.completion_time, y.completion_time);
}

TEST(Simulator, ResultMasksConsistent) {
    const Graph g = cycle_graph(6);
    Simulator sim(g);
    RelayAll agent(6);
    Rng rng(3);
    const auto result = sim.run(2, agent, rng);
    std::size_t tx = 0, rx = 0;
    for (std::size_t v = 0; v < 6; ++v) {
        tx += result.transmitted[v] != 0;
        rx += result.received[v] != 0;
    }
    EXPECT_EQ(tx, result.forward_count);
    EXPECT_EQ(rx, result.received_count);
}

}  // namespace
}  // namespace adhoc
