// Differential test plane for the SINR-family reception backends.
//
// The load-bearing contract (docs/MEDIUM.md): the SINR decision is a pure
// function of already-scheduled state — it consumes no randomness and
// never changes event *scheduling* — so a kSinr medium with beta = 0 and
// zero noise must replay the kIdeal event stream byte for byte.  The tests
// below pin that equivalence across seeds and algorithm families, the
// interference semantics of both backends on hand-built geometry, the
// capture/rejection counters, and the Simulator's positions validation.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/flooding.hpp"
#include "fuzz/oracles.hpp"
#include "graph/graph.hpp"
#include "graph/unit_disk.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"

namespace adhoc {
namespace {

using fuzz::AlgorithmConfig;
using fuzz::AlgorithmPool;
using fuzz::result_digest;

/// A paper-recipe network small enough for many runs per test.
UnitDiskNetwork test_network(std::uint64_t seed) {
    UnitDiskParams params;
    params.node_count = 24;
    params.average_degree = 6.0;
    Rng rng(seed);
    return generate_network_checked(params, rng);
}

MediumConfig sinr_over(const UnitDiskNetwork& net, double beta, double noise = 0.0) {
    MediumConfig cfg;
    cfg.backend = MediumBackend::kSinr;
    cfg.positions = net.positions;
    cfg.sinr.beta = beta;
    cfg.sinr.noise = noise;
    cfg.sinr.vulnerability_window = 0.25;
    cfg.sinr.interference_range = 2.0 * net.range;
    return cfg;
}

// ---- kIdeal equivalence ------------------------------------------------

TEST(SinrDifferential, BetaZeroZeroNoiseMatchesIdealByteForByte) {
    const AlgorithmPool pool;
    const char* algorithms[] = {"flooding", "wu-li", "mpr", "dp", "sba"};
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const UnitDiskNetwork net = test_network(seed);
        for (const char* name : algorithms) {
            AlgorithmConfig ac;
            ac.algorithm = name;
            const auto resolved = pool.resolve(ac);
            ASSERT_NE(resolved.algorithm, nullptr) << name;

            Rng ideal_rng(seed * 1000);
            const BroadcastResult ideal =
                resolved.algorithm->broadcast_traced(net.graph, 0, ideal_rng, {});

            Rng sinr_rng(seed * 1000);
            const BroadcastResult degenerate = resolved.algorithm->broadcast_traced(
                net.graph, 0, sinr_rng, sinr_over(net, /*beta=*/0.0));

            EXPECT_EQ(result_digest(degenerate), result_digest(ideal))
                << name << " seed " << seed;
            EXPECT_EQ(degenerate.sinr_rejections, 0u) << name << " seed " << seed;
        }
    }
}

TEST(SinrDifferential, IdealBackendReportsZeroCounters) {
    const UnitDiskNetwork net = test_network(7);
    const FloodingAlgorithm flooding;
    Rng rng(7);
    const BroadcastResult r = flooding.broadcast_traced(net.graph, 0, rng, {});
    EXPECT_EQ(r.sinr_rejections, 0u);
    EXPECT_EQ(r.captures, 0u);
}

// ---- Capture-threshold monotonicity (pinned empirically) ---------------

TEST(SinrDifferential, RaisingBetaNeverHealsReception) {
    // With a positive noise floor, raising beta only shrinks the accepted
    // set per arrival.  Neither global delivery nor the rejection total is
    // provably monotone (a rejected arrival also silences a would-be
    // forwarder, removing later arrivals entirely), but delivery is
    // monotone on this pinned workload, and any positive threshold must
    // reject something on it.
    const UnitDiskNetwork net = test_network(5);
    const FloodingAlgorithm flooding;
    const double noise = 1e-4;
    std::size_t last_received = net.graph.node_count() + 1;
    for (const double beta : {0.0, 0.5, 2.0}) {
        Rng rng(5);
        const BroadcastResult r =
            flooding.broadcast_traced(net.graph, 0, rng, sinr_over(net, beta, noise));
        EXPECT_LE(r.received_count, last_received) << "beta " << beta;
        if (beta == 0.0) {
            EXPECT_EQ(r.sinr_rejections, 0u);
        } else {
            EXPECT_GT(r.sinr_rejections, 0u) << "beta " << beta;
        }
        last_received = r.received_count;
    }
}

TEST(SinrDifferential, NoiseDominatedMediumSilencesEverything) {
    // beta * noise far above the strongest possible signal: every arrival
    // fails the threshold and only the source ever holds the packet.
    const UnitDiskNetwork net = test_network(5);
    const FloodingAlgorithm flooding;
    Rng rng(5);
    const BroadcastResult r =
        flooding.broadcast_traced(net.graph, 0, rng, sinr_over(net, /*beta=*/1e18, 1.0));
    EXPECT_EQ(r.received_count, 1u);  // the transmitting source holds its own packet
    EXPECT_FALSE(r.full_delivery);
    EXPECT_GT(r.sinr_rejections, 0u);
    EXPECT_EQ(r.captures, 0u);
}

// ---- Hand-built geometry: the diamond under interference ---------------

/// 0-{1,2}-3 with flooding: 1 and 2 relay at the same instant, so node 3
/// sees two concurrent arrivals — the canonical interference case.
Graph diamond() {
    Graph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g.add_edge(2, 3);
    return g;
}

MediumConfig diamond_medium(MediumBackend backend, std::vector<Point2D> positions) {
    MediumConfig cfg;
    cfg.backend = backend;
    cfg.positions = std::move(positions);
    cfg.sinr.interference_range = 10.0;
    return cfg;
}

TEST(SinrDifferential, UniformPowerRejectsAnyConcurrentInterference) {
    // Symmetric diamond: both copies reach node 3 at the same instant.
    // Uniform-power has no capture — both are destroyed, like the ideal
    // backend's collision model but via the interference bookkeeping.
    MediumConfig cfg = diamond_medium(MediumBackend::kUniformPowerGraph,
                                      {{0.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.5}});
    const FloodingAlgorithm flooding;
    Rng rng(11);
    const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
    EXPECT_TRUE(static_cast<bool>(r.received[1]));
    EXPECT_TRUE(static_cast<bool>(r.received[2]));
    EXPECT_FALSE(static_cast<bool>(r.received[3]));
    // Both copies at node 3, plus the relays' echoes back at the source —
    // all four t=2 arrivals overlap a concurrent transmission.
    EXPECT_EQ(r.sinr_rejections, 4u);
    EXPECT_EQ(r.captures, 0u);  // uniform-power never captures
}

TEST(SinrDifferential, SinrBetaZeroCapturesThroughInterference) {
    // Same geometry under kSinr with beta = 0: both concurrent copies are
    // accepted (and counted as captures), so node 3 is reached.
    MediumConfig cfg = diamond_medium(MediumBackend::kSinr,
                                      {{0.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.5}});
    const FloodingAlgorithm flooding;
    Rng rng(11);
    const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
    EXPECT_TRUE(r.full_delivery);
    EXPECT_EQ(r.sinr_rejections, 0u);
    EXPECT_EQ(r.captures, 4u);  // the same four interfered arrivals, all accepted
}

TEST(SinrDifferential, StrongSignalCapturesWeakOneDoesNot) {
    // Asymmetric diamond: node 3 sits 0.5 from relay 1 (signal 8) and
    // ~2.55 from relay 2 (signal ~0.06).  At beta = 1 the strong copy
    // clears 8 >= 1 * (0 + 0.06); the weak one fails the reverse test.
    // The same asymmetry repeats for the echoes at the source, so exactly
    // two arrivals capture and two are drowned — and delivery is intact.
    MediumConfig cfg = diamond_medium(MediumBackend::kSinr,
                                      {{0.0, 0.0}, {0.5, 1.0}, {-2.0, 1.0}, {0.5, 1.5}});
    cfg.sinr.beta = 1.0;
    const FloodingAlgorithm flooding;
    Rng rng(11);
    const BroadcastResult r = flooding.broadcast_traced(diamond(), 0, rng, cfg);
    EXPECT_TRUE(static_cast<bool>(r.received[3]));
    EXPECT_EQ(r.captures, 2u);
    EXPECT_EQ(r.sinr_rejections, 2u);
}

// ---- Simulator-side validation ----------------------------------------

TEST(SinrDifferential, SimulatorRejectsPositionCountMismatch) {
    MediumConfig cfg = diamond_medium(MediumBackend::kSinr,
                                      {{0.0, 0.0}, {1.0, 0.0}, {-1.0, 0.0}});  // 3 for 4 nodes
    try {
        Simulator sim(diamond(), cfg);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("positions"), std::string::npos) << what;
    }
}

}  // namespace
}  // namespace adhoc
