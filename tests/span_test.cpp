// Unit tests for enhanced Span (bounded replacement paths).

#include "algorithms/span.hpp"

#include <gtest/gtest.h>

#include "algorithms/rule_k.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(Span, CompleteGraphHasNoCoordinators) {
    const auto fwd = span_forward_set(complete_graph(4), {});
    EXPECT_EQ(set_size(fwd), 0u);
}

TEST(Span, PathInteriorAreCoordinators) {
    const auto fwd = span_forward_set(path_graph(4), {});
    EXPECT_FALSE(fwd[0]);
    EXPECT_TRUE(fwd[1]);
    EXPECT_TRUE(fwd[2]);
    EXPECT_FALSE(fwd[3]);
}

TEST(Span, TwoIntermediateCoordinatorsSuffice) {
    // C5 with ids arranged so node 0's neighbors 1, 4 connect via 2-3
    // (two intermediates, 3 hops) — within Span's limit.
    const Graph g = cycle_graph(5);
    const SpanConfig cfg{.hops = 3, .priority = PriorityScheme::kId};
    const auto fwd = span_forward_set(g, cfg);
    EXPECT_FALSE(fwd[0]);  // path 1-2-3-4 has intermediates 2,3 > 0
}

TEST(Span, ThreeIntermediatesExceedLimit) {
    // C6: node 0's neighbors 1, 5 need path 1-2-3-4-5: three intermediates,
    // 4 hops — beyond Span's limit, so 0 stays coordinator even though the
    // unbounded coverage condition would prune it.
    const Graph g = cycle_graph(6);
    const SpanConfig cfg{.hops = 0, .priority = PriorityScheme::kId};  // global info
    const auto fwd = span_forward_set(g, cfg);
    EXPECT_TRUE(fwd[0]);
    // Rule k is not directly comparable (strong vs bounded); the generic
    // unbounded condition prunes node 0 — verified in coverage_test.
}

TEST(Span, CoordinatorSetIsCdsOnRandomNetworks) {
    Rng rng(41);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        for (std::size_t hops : {2u, 3u}) {
            SpanConfig cfg;
            cfg.hops = hops;
            const auto fwd = span_forward_set(net.graph, cfg);
            EXPECT_TRUE(is_cds(net.graph, fwd)) << "i=" << i << " hops=" << hops;
        }
    }
}

TEST(Span, BroadcastDelivers) {
    const SpanAlgorithm algo;
    const Graph g = grid_graph(5, 4);
    Rng rng(2);
    for (NodeId src : {0u, 9u, 19u}) {
        EXPECT_TRUE(algo.broadcast(g, src, rng).full_delivery) << src;
    }
}

TEST(Span, NameMentionsConfig) {
    EXPECT_NE(SpanAlgorithm({.hops = 3}).name().find("Span"), std::string::npos);
}

}  // namespace
}  // namespace adhoc
