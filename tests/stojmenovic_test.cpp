// Unit tests for Stojmenovic's CDS + neighbor-elimination broadcast.

#include "algorithms/stojmenovic.hpp"

#include <gtest/gtest.h>

#include "algorithms/wu_li.hpp"
#include "graph/unit_disk.hpp"

namespace adhoc {
namespace {

TEST(Stojmenovic, DeliversOnDeterministicTopologies) {
    const StojmenovicAlgorithm algo;
    for (const Graph& g : {path_graph(6), cycle_graph(8), grid_graph(4, 4)}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            Rng rng(seed);
            EXPECT_TRUE(algo.broadcast(g, 0, rng).full_delivery)
                << "n=" << g.node_count() << " seed=" << seed;
        }
    }
}

TEST(Stojmenovic, DeliversOnRandomNetworks) {
    Rng rng(101);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 6.0;
    const StojmenovicAlgorithm algo;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng run(i);
        EXPECT_TRUE(
            algo.broadcast(net.graph, static_cast<NodeId>(run.index(60)), run).full_delivery)
            << i;
    }
}

TEST(Stojmenovic, NeverForwardsOutsideWuLiCds) {
    Rng rng(103);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    const auto cds = wu_li_forward_set(
        net.graph, WuLiConfig{.hops = 2, .priority = PriorityScheme::kDegree});
    const StojmenovicAlgorithm algo;
    Rng run(7);
    const NodeId src = 0;
    const auto result = algo.broadcast(net.graph, src, run);
    for (NodeId v = 0; v < net.graph.node_count(); ++v) {
        if (v == src) continue;
        if (result.transmitted[v]) EXPECT_TRUE(cds[v]) << "node " << v;
    }
}

TEST(Stojmenovic, EliminationPrunesBelowStaticCds) {
    // On average the dynamic elimination should do no worse than relaying
    // through the whole static CDS.
    Rng rng(107);
    UnitDiskParams params;
    params.node_count = 60;
    params.average_degree = 8.0;
    const StojmenovicAlgorithm dyn;
    const WuLiAlgorithm stat(WuLiConfig{.hops = 2, .priority = PriorityScheme::kDegree});
    double dyn_total = 0, stat_total = 0;
    for (int i = 0; i < 15; ++i) {
        const auto net = generate_network_checked(params, rng);
        Rng a(i), b(i);
        dyn_total += static_cast<double>(dyn.broadcast(net.graph, 0, a).forward_count);
        stat_total += static_cast<double>(stat.broadcast(net.graph, 0, b).forward_count);
    }
    EXPECT_LE(dyn_total, stat_total);
}

}  // namespace
}  // namespace adhoc
