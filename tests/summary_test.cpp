// Unit tests for streaming statistics and the CI stopping rule.

#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace adhoc {
namespace {

TEST(Summary, MeanAndVariance) {
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(Summary, SingleSampleHasZeroVariance) {
    Summary s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.standard_error(), 0.0);
    EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(Summary, CiShrinksWithSamples) {
    Rng rng(1);
    Summary small, large;
    for (int i = 0; i < 30; ++i) small.add(rng.uniform(0, 10));
    Rng rng2(1);
    for (int i = 0; i < 3000; ++i) large.add(rng2.uniform(0, 10));
    EXPECT_LT(large.ci_half_width(), small.ci_half_width());
}

TEST(Summary, CiWithinRule) {
    Summary s;
    // Constant data: CI width 0, within any fraction once min_count reached.
    for (int i = 0; i < 9; ++i) s.add(5.0);
    EXPECT_FALSE(s.ci_within(0.01, 1.645, 10));  // below min_count
    s.add(5.0);
    EXPECT_TRUE(s.ci_within(0.01, 1.645, 10));
}

TEST(Summary, CiWithinFailsForNoisyFewSamples) {
    Summary s;
    s.add(1.0);
    for (int i = 0; i < 10; ++i) s.add(i % 2 == 0 ? 1.0 : 100.0);
    EXPECT_FALSE(s.ci_within(0.01));
}

// Regression: the relative ±1% rule collapses to `hw <= 0` at mean 0, so a
// metric that is identically zero (delivery failures of a reliable scheme)
// used to keep every campaign cell running to max_runs.  The absolute
// fallback terminates it; the rule stays relative for nonzero means.
TEST(Summary, ZeroMeanConvergesViaAbsoluteEpsilon) {
    Summary s;
    for (int i = 0; i < 100; ++i) s.add(0.0);
    EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
    EXPECT_TRUE(s.ci_within(0.01));  // hw 0 <= abs_epsilon
}

TEST(Summary, NearZeroMeanConvergesViaAbsoluteEpsilon) {
    // Mean ~0 with real noise: the relative target (fraction * |mean|) is
    // microscopic, but a caller-chosen absolute target can still be met.
    Summary s;
    for (int i = 0; i < 400; ++i) s.add(i % 2 == 0 ? 1e-6 : -1e-6);
    EXPECT_FALSE(s.ci_within(0.01, 1.645, 10, /*abs_epsilon=*/1e-12));
    EXPECT_TRUE(s.ci_within(0.01, 1.645, 10, /*abs_epsilon=*/1e-3));
}

TEST(Summary, AbsoluteEpsilonDoesNotLoosenNonzeroMeans) {
    // A noisy nonzero-mean metric must still be judged by the relative rule:
    // the tiny default epsilon never rescues a genuinely wide interval.
    Summary s;
    for (int i = 0; i < 20; ++i) s.add(i % 2 == 0 ? 1.0 : 100.0);
    EXPECT_FALSE(s.ci_within(0.01));
}

TEST(Summary, MergeMatchesSequential) {
    Rng rng(7);
    Summary whole, left, right;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(-3, 3);
        whole.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(Summary, MergeWithEmpty) {
    Summary a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, NinetyPercentCiCoversTrueMean) {
    // Statistical sanity: over many experiments on uniform(0,1) samples,
    // the 90% CI should contain 0.5 roughly 90% of the time.
    Rng rng(11);
    int covered = 0;
    const int experiments = 300;
    for (int e = 0; e < experiments; ++e) {
        Summary s;
        for (int i = 0; i < 50; ++i) s.add(rng.uniform());
        const double half = s.ci_half_width(1.645);
        if (std::abs(s.mean() - 0.5) <= half) ++covered;
    }
    EXPECT_GT(covered, experiments * 0.82);
    EXPECT_LT(covered, experiments * 0.97);
}

}  // namespace
}  // namespace adhoc
