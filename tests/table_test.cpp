// Unit tests for the table/CSV/gnuplot formatters.

#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace adhoc {
namespace {

std::vector<AlgorithmSeries> sample_series() {
    AlgorithmSeries a;
    a.name = "Algo-A";
    a.points = {{20, 10.5, 0.2, 3.0, 30, 0}, {30, 14.25, 0.3, 3.5, 40, 0}};
    AlgorithmSeries b;
    b.name = "Algo-B";
    b.points = {{20, 12.0, 0.1, 2.0, 30, 0}, {30, 16.0, 0.2, 2.5, 40, 0}};
    return {a, b};
}

TEST(Table, FormatTableContainsTitleNamesAndValues) {
    const std::string out = format_table("d=6, 2-hop", sample_series());
    EXPECT_NE(out.find("d=6, 2-hop"), std::string::npos);
    EXPECT_NE(out.find("Algo-A"), std::string::npos);
    EXPECT_NE(out.find("Algo-B"), std::string::npos);
    EXPECT_NE(out.find("10.50"), std::string::npos);
    EXPECT_NE(out.find("16.00"), std::string::npos);
    EXPECT_NE(out.find("20"), std::string::npos);
    EXPECT_NE(out.find("30"), std::string::npos);
}

TEST(Table, FormatTableWithCi) {
    const std::string out = format_table("t", sample_series(), /*show_ci=*/true);
    EXPECT_NE(out.find("±"), std::string::npos);
}

TEST(Table, CsvRoundStructure) {
    std::ostringstream out;
    write_csv(out, sample_series());
    const std::string s = out.str();
    EXPECT_EQ(s.substr(0, 2), "n,");
    EXPECT_NE(s.find("n,Algo-A,Algo-B"), std::string::npos);
    EXPECT_NE(s.find("20,10.5,12"), std::string::npos);
}

TEST(Table, GnuplotHasCommentHeader) {
    std::ostringstream out;
    write_gnuplot(out, "figure 10", sample_series());
    const std::string s = out.str();
    EXPECT_EQ(s.substr(0, 2), "# ");
    EXPECT_NE(s.find("figure 10"), std::string::npos);
    EXPECT_NE(s.find("\n20 10.5 12\n"), std::string::npos);
}

TEST(Table, FormatGridAlignsColumns) {
    const std::string out =
        format_grid({{"name", "value"}, {"alpha", "1"}, {"b", "22"}});
    // Header rule present, columns padded.
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Table, EmptySeriesSafe) {
    const std::string out = format_table("empty", {});
    EXPECT_NE(out.find("empty"), std::string::npos);
    std::ostringstream csv;
    write_csv(csv, {});
    EXPECT_EQ(csv.str(), "n\n");
}

}  // namespace
}  // namespace adhoc
