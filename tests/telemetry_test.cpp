// Tests for the telemetry layer: registration, recording semantics, scope
// nesting, the deterministic metrics export, and the campaign/fuzz contract
// that aggregated metrics are byte-identical at any --jobs value.

#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "fuzz/fuzzer.hpp"
#include "runner/campaign.hpp"
#include "telemetry/sinks.hpp"

namespace adhoc {
namespace {

namespace tel = telemetry;

/// Tests toggle the global switch; always restore it so ordering between
/// test cases cannot matter.
class EnabledGuard {
  public:
    explicit EnabledGuard(bool on) : prev_(tel::enabled()) { tel::set_enabled(on); }
    ~EnabledGuard() { tel::set_enabled(prev_); }

  private:
    bool prev_;
};

// ---------------------------------------------------------- registration --

TEST(TelemetryRegistry, SameNameYieldsSameId) {
    const tel::MetricId a = tel::counter("test.registry.dedupe", "events");
    const tel::MetricId b = tel::counter("test.registry.dedupe", "events");
    EXPECT_EQ(a, b);
    EXPECT_EQ(tel::metric(a).name, "test.registry.dedupe");
    EXPECT_EQ(tel::metric(a).kind, tel::Kind::kCounter);
    EXPECT_EQ(tel::metric(a).unit, "events");
}

TEST(TelemetryRegistry, DistinctNamesYieldDistinctIds) {
    const tel::MetricId a = tel::counter("test.registry.a");
    const tel::MetricId b = tel::counter("test.registry.b");
    EXPECT_NE(a, b);
    EXPECT_LT(a, tel::metric_count());
    EXPECT_LT(b, tel::metric_count());
}

// ------------------------------------------------------------- recording --

TEST(TelemetryRecording, DisabledRecordingIsInvisible) {
    const tel::MetricId id = tel::counter("test.disabled.counter");
    EnabledGuard guard(false);
    tel::RunScope scope;
    tel::count(id, 5);
    tel::observe(tel::histogram("test.disabled.hist", {1, 2}), 1);
    EXPECT_TRUE(scope.harvest().empty());
}

TEST(TelemetryRecording, CounterAccumulatesCountAndSum) {
    const tel::MetricId id = tel::counter("test.counter.sum");
    EnabledGuard guard(true);
    tel::RunScope scope;
    tel::count(id);
    tel::count(id, 9);
    const tel::Snapshot snap = scope.harvest();
    ASSERT_GT(snap.values().size(), id);
    EXPECT_EQ(snap.values()[id].count, 2u);
    EXPECT_EQ(snap.values()[id].sum, 10u);
}

TEST(TelemetryRecording, GaugeKeepsMaximum) {
    const tel::MetricId id = tel::gauge("test.gauge.max");
    EnabledGuard guard(true);
    tel::RunScope scope;
    tel::gauge_sample(id, 3);
    tel::gauge_sample(id, 40);
    tel::gauge_sample(id, 7);
    const tel::Snapshot snap = scope.harvest();
    ASSERT_GT(snap.values().size(), id);
    EXPECT_EQ(snap.values()[id].max, 40u);
    EXPECT_EQ(snap.values()[id].count, 3u);
}

TEST(TelemetryRecording, HistogramBucketsByUpperBound) {
    // Bounds {2, 5}: buckets are (<=2), (<=5), (>5).
    const tel::MetricId id = tel::histogram("test.hist.buckets", {2, 5});
    EnabledGuard guard(true);
    tel::RunScope scope;
    for (const std::uint64_t sample : {1u, 2u, 3u, 5u, 6u, 100u}) tel::observe(id, sample);
    const tel::Snapshot snap = scope.harvest();
    ASSERT_GT(snap.values().size(), id);
    const tel::MetricValue& v = snap.values()[id];
    EXPECT_EQ(v.count, 6u);
    EXPECT_EQ(v.max, 100u);
    ASSERT_EQ(v.buckets.size(), 3u);
    EXPECT_EQ(v.buckets[0], 2u);  // 1, 2
    EXPECT_EQ(v.buckets[1], 2u);  // 3, 5
    EXPECT_EQ(v.buckets[2], 2u);  // 6, 100
}

TEST(TelemetryRecording, ScopedTimerLandsInEnclosingScope) {
    const tel::MetricId id = tel::timer("test.timer.scope");
    EnabledGuard guard(true);
    tel::RunScope scope;
    { tel::ScopedTimer span(id); }
    const tel::Snapshot snap = scope.harvest();
    ASSERT_GT(snap.values().size(), id);
    EXPECT_EQ(snap.values()[id].count, 1u);
    // Wall-clock timers are excluded from the deterministic export...
    EXPECT_EQ(tel::metrics_json(snap, /*include_timing=*/false), "{}");
    // ...but present in the diagnostic one.
    EXPECT_NE(tel::metrics_json(snap, /*include_timing=*/true).find("test.timer.scope"),
              std::string::npos);
}

// --------------------------------------------------------------- scoping --

TEST(TelemetryScoping, UnharvestedScopeFoldsIntoParent) {
    const tel::MetricId id = tel::counter("test.scope.fold");
    EnabledGuard guard(true);
    tel::RunScope outer;
    {
        tel::RunScope inner;
        tel::count(id, 4);
    }  // no harvest: rolls up
    const tel::Snapshot snap = outer.harvest();
    ASSERT_GT(snap.values().size(), id);
    EXPECT_EQ(snap.values()[id].sum, 4u);
}

TEST(TelemetryScoping, HarvestedScopeDoesNotLeakToParent) {
    const tel::MetricId id = tel::counter("test.scope.leak");
    EnabledGuard guard(true);
    tel::RunScope outer;
    tel::Snapshot inner_snap;
    {
        tel::RunScope inner;
        tel::count(id, 4);
        inner_snap = inner.harvest();
    }
    ASSERT_GT(inner_snap.values().size(), id);
    EXPECT_EQ(inner_snap.values()[id].sum, 4u);
    const tel::Snapshot outer_snap = outer.harvest();
    const bool leaked =
        outer_snap.values().size() > id && !outer_snap.values()[id].empty();
    EXPECT_FALSE(leaked);
}

TEST(TelemetrySnapshot, MergeIsElementWise) {
    const tel::MetricId id = tel::counter("test.snapshot.merge");
    EnabledGuard guard(true);
    tel::Snapshot a, b;
    a.add_count(id, 3);
    b.add_count(id, 5);
    a.merge(b);
    EXPECT_EQ(a.values()[id].sum, 8u);
    EXPECT_EQ(a.values()[id].count, 2u);
}

// -------------------------------------------------------- metrics export --

TEST(MetricsJson, SortedKeysAndStableShape) {
    const tel::MetricId zebra = tel::counter("test.json.zebra");
    const tel::MetricId apple = tel::counter("test.json.apple");
    tel::Snapshot snap;
    snap.add_count(zebra, 1);
    snap.add_count(apple, 2);
    const std::string json = tel::metrics_json(snap, /*include_timing=*/false);
    const std::size_t at_apple = json.find("test.json.apple");
    const std::size_t at_zebra = json.find("test.json.zebra");
    ASSERT_NE(at_apple, std::string::npos);
    ASSERT_NE(at_zebra, std::string::npos);
    EXPECT_LT(at_apple, at_zebra);  // keys sorted by name
    EXPECT_NE(json.find("\"kind\": \"counter\", \"value\": 2"), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsJson, HistogramRendersPercentiles) {
    const tel::MetricId id = tel::histogram("test.json.hist.pct", {2, 5, 10});
    EnabledGuard guard(true);
    tel::RunScope scope;
    // 10 samples: 8 land <= 2, one <= 5, one overflows (max 42).
    for (int i = 0; i < 8; ++i) tel::observe(id, 1);
    tel::observe(id, 4);
    tel::observe(id, 42);
    const tel::Snapshot snap = scope.harvest();
    const std::string json = tel::metrics_json(snap, /*include_timing=*/false);
    EXPECT_NE(json.find("\"p50\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p95\": 42"), std::string::npos) << json;  // rank 10: overflow
    EXPECT_NE(json.find("\"p99\": 42"), std::string::npos) << json;
}

TEST(MetricsJson, HistogramQuantileResolvesBounds) {
    const std::vector<std::uint64_t> bounds = {2, 5, 10};
    // 4 in (<=2), 4 in (<=5), 1 in (<=10), 1 overflow; max sample 77.
    const std::vector<std::uint64_t> buckets = {4, 4, 1, 1};
    EXPECT_EQ(tel::histogram_quantile(bounds, buckets, 77, 0.40), 2u);   // rank 4: first bucket
    EXPECT_EQ(tel::histogram_quantile(bounds, buckets, 77, 0.50), 5u);   // rank 5: second bucket
    EXPECT_EQ(tel::histogram_quantile(bounds, buckets, 77, 0.80), 5u);   // rank 8
    EXPECT_EQ(tel::histogram_quantile(bounds, buckets, 77, 0.90), 10u);  // rank 9
    EXPECT_EQ(tel::histogram_quantile(bounds, buckets, 77, 0.99), 77u);  // rank 10: overflow
    EXPECT_EQ(tel::histogram_quantile(bounds, buckets, 77, 0.0), 2u);    // rank >= 1
    EXPECT_EQ(tel::histogram_quantile(bounds, {}, 77, 0.5), 0u);         // empty
}

// ---------------------------------------------- campaign/fuzz determinism --

TEST(TelemetryDeterminism, CampaignMetricsBitIdenticalAcrossJobCounts) {
    // The tentpole contract: the deterministic metrics export of two
    // identical campaigns must be byte-identical at --jobs 1 and --jobs 8.
    EnabledGuard guard(true);
    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2));
    const std::vector<const BroadcastAlgorithm*> algos{&flooding, &generic};

    ExperimentConfig cfg;
    cfg.node_counts = {20, 30, 40};
    cfg.min_runs = 10;
    cfg.max_runs = 40;
    cfg.seed = 99;

    const auto metrics_at_jobs = [&](std::size_t jobs) {
        tel::Snapshot snap;
        runner::CampaignOptions options;
        options.jobs = jobs;
        options.telemetry_out = &snap;
        (void)runner::run_campaign(algos, cfg, options);
        return tel::metrics_json(snap, /*include_timing=*/false);
    };

    const std::string serial = metrics_at_jobs(1);
    const std::string parallel = metrics_at_jobs(8);
    EXPECT_EQ(serial, parallel);
    // Spot-check the content is real, not two empty objects.
    EXPECT_NE(serial.find("campaign.runs"), std::string::npos);
    EXPECT_NE(serial.find("campaign.rounds"), std::string::npos);
    EXPECT_NE(serial.find("sim.transmissions"), std::string::npos);
    EXPECT_NE(serial.find("protocol.decisions"), std::string::npos);
    EXPECT_EQ(serial.find("campaign.run\""), std::string::npos);  // timer excluded
}

TEST(TelemetryDeterminism, DisabledCampaignLeavesSnapshotEmpty) {
    EnabledGuard guard(false);
    const FloodingAlgorithm flooding;
    ExperimentConfig cfg;
    cfg.node_counts = {20};
    cfg.min_runs = 4;
    cfg.max_runs = 4;
    tel::Snapshot snap;
    runner::CampaignOptions options;
    options.telemetry_out = &snap;
    (void)runner::run_campaign({&flooding}, cfg, options);
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(tel::metrics_json(snap, /*include_timing=*/false), "{}");
}

TEST(TelemetryDeterminism, FuzzMetricsBitIdenticalAcrossJobCounts) {
    EnabledGuard guard(true);
    fuzz::FuzzOptions options;
    options.base_seed = 7;
    options.iterations = 24;
    options.limits.max_nodes = 16;

    options.jobs = 1;
    const fuzz::FuzzReport serial = fuzz::run_fuzz(options);
    options.jobs = 4;
    const fuzz::FuzzReport parallel = fuzz::run_fuzz(options);

    const std::string a = tel::metrics_json(serial.metrics, /*include_timing=*/false);
    const std::string b = tel::metrics_json(parallel.metrics, /*include_timing=*/false);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("fuzz.scenarios"), std::string::npos);
}

// --------------------------------------------------------- span pipeline --

TEST(SpanPipeline, ParseSpanLineRoundTrip) {
    // Exactly the line shape detail::jsonl_consume_spans writes.
    const std::string line =
        "{\"type\": \"span\", \"name\": \"sim.run\", \"ts_ns\": 1200, "
        "\"dur_ns\": 3400, \"tid\": 2}";
    const auto record = tel::parse_span_line(line);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->name, "sim.run");
    EXPECT_EQ(record->ts_ns, 1200u);
    EXPECT_EQ(record->dur_ns, 3400u);
    EXPECT_EQ(record->tid, 2u);
}

TEST(SpanPipeline, ParseSpanLineRejectsOtherRecords) {
    EXPECT_FALSE(tel::parse_span_line("{\"type\": \"run\", \"label\": \"x\"}").has_value());
    EXPECT_FALSE(tel::parse_span_line("").has_value());
    EXPECT_FALSE(tel::parse_span_line("{\"type\": \"span\", \"name\": \"x\"}").has_value());
}

TEST(SpanPipeline, SpansCollectedWhenEnabled) {
    const tel::MetricId id = tel::timer("test.span.collect");
    EnabledGuard guard(true);
    tel::set_spans_enabled(true);
    (void)tel::drain_spans();  // discard anything earlier tests left behind
    {
        tel::RunScope scope;
        { tel::ScopedTimer span(id); }
        (void)scope.harvest();  // flushes this thread's span buffer
    }
    const std::vector<tel::Span> spans = tel::drain_spans();
    tel::set_spans_enabled(false);
    const bool found = std::any_of(spans.begin(), spans.end(),
                                   [&](const tel::Span& s) { return s.metric == id; });
    EXPECT_TRUE(found);
}

TEST(ChromeTrace, WriterEmitsLoadableStructure) {
    std::vector<tel::ChromeEvent> events;
    tel::ChromeEvent complete;
    complete.name = "transmit";
    complete.ph = 'X';
    complete.tid = 3;
    complete.ts_us = 1.5;
    complete.dur_us = 2.0;
    events.push_back(complete);
    tel::ChromeEvent instant;
    instant.name = "prune";
    instant.ph = 'i';
    instant.tid = 4;
    instant.ts_us = 9.0;
    events.push_back(instant);

    std::ostringstream out;
    tel::write_chrome_trace(out, events);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"transmit\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace adhoc
