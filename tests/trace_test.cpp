// Unit tests for trace recording.

#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(Trace, DisabledByDefault) {
    Trace trace;
    trace.record(1.0, TraceKind::kTransmit, 0);
    EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
    Trace trace;
    trace.enable();
    trace.record(1.0, TraceKind::kTransmit, 3);
    trace.record(2.0, TraceKind::kReceive, 4, 3);
    ASSERT_EQ(trace.events().size(), 2u);
    EXPECT_EQ(trace.events()[0].node, 3u);
    EXPECT_EQ(trace.events()[1].other, 3u);
}

TEST(Trace, CountByKind) {
    Trace trace;
    trace.enable();
    trace.record(0.0, TraceKind::kTransmit, 0);
    trace.record(1.0, TraceKind::kReceive, 1, 0);
    trace.record(1.0, TraceKind::kReceive, 2, 0);
    trace.record(1.0, TraceKind::kPrune, 1);
    trace.record(1.0, TraceKind::kDesignate, 2, 0);
    EXPECT_EQ(trace.count(TraceKind::kTransmit), 1u);
    EXPECT_EQ(trace.count(TraceKind::kReceive), 2u);
    EXPECT_EQ(trace.count(TraceKind::kPrune), 1u);
    EXPECT_EQ(trace.count(TraceKind::kDesignate), 1u);
}

TEST(Trace, ToStringMentionsEachKind) {
    Trace trace;
    trace.enable();
    trace.record(0.0, TraceKind::kTransmit, 0);
    trace.record(1.0, TraceKind::kReceive, 1, 0);
    trace.record(1.0, TraceKind::kPrune, 2);
    trace.record(1.0, TraceKind::kDesignate, 3, 0);
    const std::string s = trace.to_string();
    EXPECT_NE(s.find("TX"), std::string::npos);
    EXPECT_NE(s.find("RX"), std::string::npos);
    EXPECT_NE(s.find("PRUNE"), std::string::npos);
    EXPECT_NE(s.find("DESG"), std::string::npos);
}

TEST(Trace, ClearEmptiesButKeepsEnabled) {
    Trace trace;
    trace.enable();
    trace.record(0.0, TraceKind::kTransmit, 0);
    trace.clear();
    EXPECT_TRUE(trace.events().empty());
    trace.record(0.0, TraceKind::kTransmit, 1);
    EXPECT_EQ(trace.events().size(), 1u);
}

}  // namespace
}  // namespace adhoc
