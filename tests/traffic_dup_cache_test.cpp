// Unit tests for the bounded per-node duplicate cache: LRU eviction over
// sources, sliding seq windows, and the hard memory ceiling.

#include "traffic/dup_cache.hpp"

#include <gtest/gtest.h>

namespace adhoc::traffic {
namespace {

TEST(DupCache, FirstInsertIsNewThenDuplicate) {
    DupCache cache;
    EXPECT_EQ(cache.insert(3, 7), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(3, 7), CacheInsert::kDuplicate);
    EXPECT_TRUE(cache.holds(3, 7));
    EXPECT_FALSE(cache.holds(3, 8));
    EXPECT_FALSE(cache.holds(4, 7));
}

TEST(DupCache, IndependentSequencesPerSource) {
    DupCache cache;
    EXPECT_EQ(cache.insert(1, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(2, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(1, 1), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(2, 0), CacheInsert::kDuplicate);
    EXPECT_EQ(cache.source_count(), 2u);
}

TEST(DupCache, WindowRoundsUpToWholeWords) {
    DupCache a(DupCacheConfig{.max_sources = 4, .window = 100});
    EXPECT_EQ(a.config().window, 128u);
    DupCache b(DupCacheConfig{.max_sources = 4, .window = 0});
    EXPECT_EQ(b.config().window, 64u);
}

TEST(DupCache, WindowSlideForgetsOldestIds) {
    DupCache cache(DupCacheConfig{.max_sources = 4, .window = 64});
    EXPECT_EQ(cache.insert(9, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(9, 63), CacheInsert::kNew);
    EXPECT_TRUE(cache.holds(9, 0));
    // seq 64 is one past the window: base slides to 1, seq 0 is forgotten.
    EXPECT_EQ(cache.insert(9, 64), CacheInsert::kNew);
    EXPECT_EQ(cache.window_slides(), 1u);
    EXPECT_FALSE(cache.holds(9, 0));
    EXPECT_TRUE(cache.holds(9, 63));
    EXPECT_TRUE(cache.holds(9, 64));
}

TEST(DupCache, BelowWindowIsSuppressedButNotHeld) {
    DupCache cache(DupCacheConfig{.max_sources = 4, .window = 64});
    EXPECT_EQ(cache.insert(9, 200), CacheInsert::kNew);  // base anchors at 137 (200 on top)
    EXPECT_EQ(cache.insert(9, 5), CacheInsert::kBelowWindow);
    EXPECT_EQ(cache.below_window_hits(), 1u);
    // The conservative trade-off: suppressed as a duplicate, but never
    // advertised or served as a repair.
    EXPECT_FALSE(cache.holds(9, 5));
}

TEST(DupCache, FarSlideClearsWholeBitmap) {
    DupCache cache(DupCacheConfig{.max_sources = 4, .window = 128});
    EXPECT_EQ(cache.insert(1, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(1, 10000), CacheInsert::kNew);  // shift >= window
    EXPECT_FALSE(cache.holds(1, 0));
    EXPECT_TRUE(cache.holds(1, 10000));
    // Only the landing bit survives.
    EXPECT_EQ(cache.insert(1, 10000), CacheInsert::kDuplicate);
    EXPECT_EQ(cache.insert(1, 9999), CacheInsert::kNew);
}

TEST(DupCache, LruEvictionAtSourceBound) {
    DupCache cache(DupCacheConfig{.max_sources = 2, .window = 64});
    EXPECT_EQ(cache.insert(10, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(20, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.insert(10, 1), CacheInsert::kNew);  // touch 10: 20 is LRU
    EXPECT_EQ(cache.insert(30, 0), CacheInsert::kNew);  // evicts 20
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_EQ(cache.source_count(), 2u);
    EXPECT_FALSE(cache.holds(20, 0));
    EXPECT_TRUE(cache.holds(10, 1));
    EXPECT_TRUE(cache.holds(30, 0));
    // A re-inserted evicted source counts as new again (state was lost).
    EXPECT_EQ(cache.insert(20, 0), CacheInsert::kNew);
    EXPECT_EQ(cache.evictions(), 2u);
}

TEST(DupCache, MemoryNeverExceedsCeiling) {
    const DupCacheConfig config{.max_sources = 8, .window = 128};
    DupCache cache(config);
    const std::size_t ceiling = cache.ceiling_bytes();
    EXPECT_EQ(ceiling, 8u * (DupCache::kEntryOverheadBytes + 128 / 8));
    for (NodeId s = 0; s < 100; ++s) {
        for (std::uint32_t q = 0; q < 5; ++q) cache.insert(s, q * 977);
        EXPECT_LE(cache.memory_bytes(), ceiling);
    }
    EXPECT_LE(cache.peak_bytes(), ceiling);
    EXPECT_EQ(cache.peak_bytes(), ceiling);  // bound was reached and held
    EXPECT_EQ(cache.source_count(), 8u);
}

}  // namespace
}  // namespace adhoc::traffic
