// System tests for the continuous-traffic engine: concurrent sessions
// through one event loop, duplicate suppression, summary-vector recovery
// across faults, and the three-way per-session classification.

#include "traffic/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "faults/fault_plan.hpp"
#include "graph/graph.hpp"
#include "graph/unit_disk.hpp"
#include "traffic/policy.hpp"
#include "traffic/workload.hpp"

namespace adhoc::traffic {
namespace {

Workload single_session(NodeId source, double at) {
    Workload wl;
    wl.arrivals.push_back(SessionArrival{source, 0, at});
    wl.horizon = at;
    return wl;
}

std::string digest(const TrafficResult& r) {
    std::ostringstream out;
    out << r.delivered << '/' << r.degraded << '/' << r.partitioned << ';'
        << r.data_transmissions << ';' << r.data_bytes << ';' << r.fresh_deliveries << ';'
        << r.duplicates_suppressed << ';' << r.sv_beacons << ';' << r.control_bytes << ';'
        << r.pulls_sent << ';' << r.repairs_served << ';' << r.completion_time;
    for (const SessionOutcome& s : r.sessions) {
        out << '|' << s.source << ',' << s.seq << ',' << static_cast<int>(s.outcome) << ','
            << s.delivered_up << ',' << s.last_delivery << ',' << s.forwards;
    }
    for (const std::uint64_t b : r.latency_hist) out << '#' << b;
    return out.str();
}

TEST(TrafficEngine, FaultFreeFullDeliveryAcrossPolicies) {
    const Graph g = grid_graph(4, 5);
    TrafficConfig config;
    config.sessions = 50;
    config.rate = 2.0;
    const Workload wl = make_workload(config, g.node_count(), 42, 0);

    for (const char* key : {"flooding", "generic-static", "generic-fr", "wu-li"}) {
        const auto policy = make_policy(g, key);
        ASSERT_NE(policy, nullptr) << key;
        TrafficEngine engine(g, *policy);
        Rng rng(7);
        const TrafficResult r = engine.run(wl, rng);
        EXPECT_EQ(r.delivered, 50u) << key;
        EXPECT_EQ(r.degraded, 0u) << key;
        EXPECT_EQ(r.partitioned, 0u) << key;
        // Every node received every session exactly once.
        EXPECT_EQ(r.fresh_deliveries, 50u * g.node_count()) << key;
    }
}

TEST(TrafficEngine, PruningPoliciesForwardLessThanFlooding) {
    // A unit-disk topology: grids are triangle-free, so neighbor-coverage
    // pruning rules (Wu-Li) cannot unmark anything there.
    UnitDiskParams params;
    params.node_count = 30;
    params.average_degree = 8.0;
    Rng topo_rng(17);
    const Graph g = generate_network_checked(params, topo_rng).graph;
    TrafficConfig config;
    config.sessions = 40;
    const Workload wl = make_workload(config, g.node_count(), 9, 0);

    const auto tx_for = [&](const char* key) {
        const auto policy = make_policy(g, key);
        TrafficEngine engine(g, *policy);
        Rng rng(3);
        return engine.run(wl, rng).data_transmissions;
    };
    const std::size_t flood_tx = tx_for("flooding");
    EXPECT_LT(tx_for("generic-fr"), flood_tx);
    EXPECT_LT(tx_for("wu-li"), flood_tx);
}

TEST(TrafficEngine, DeterministicForIdenticalSeeds) {
    const Graph g = grid_graph(4, 4);
    TrafficConfig config;
    config.sessions = 120;
    const Workload wl = make_workload(config, g.node_count(), 5, 0);
    const auto policy = make_policy(g, "generic-fr");

    faults::FaultSpec spec;
    spec.crash_rate = 0.2;
    spec.link_churn_rate = 0.2;
    spec.protect_source = false;
    const faults::FaultPlan plan = faults::make_fault_plan(spec, g, 0, 77, 0);

    const auto once = [&] {
        TrafficEngine engine(g, *policy);
        engine.attach_faults(&plan);
        Rng rng(11);
        return digest(engine.run(wl, rng));
    };
    EXPECT_EQ(once(), once());
}

TEST(TrafficEngine, DuplicateSuppressionBoundsForwarding) {
    // Flooding on a dense-ish grid: every node sees several copies per
    // session but relays exactly once, so transmissions are bounded by
    // sessions * nodes while duplicates pile up in the counter.
    const Graph g = grid_graph(4, 5);
    TrafficConfig config;
    config.sessions = 30;
    const Workload wl = make_workload(config, g.node_count(), 2, 0);
    const auto policy = make_policy(g, "flooding");
    TrafficEngine engine(g, *policy);
    Rng rng(1);
    const TrafficResult r = engine.run(wl, rng);
    EXPECT_GT(r.duplicates_suppressed, 0u);
    EXPECT_LE(r.data_transmissions, 30u * g.node_count());
    EXPECT_EQ(r.delivered, 30u);
}

TEST(TrafficEngine, SummaryVectorPullHealsChurnedPartition) {
    // Path 0-1-2-3 with link 1-2 down across the broadcast and restored
    // later: the flood stalls at node 1, then node 2 hears node 1's beacon
    // after the link heals, pulls the gap, and flooding carries the repair
    // on to node 3 — multi-hop recovery, end-to-end.
    const Graph g = path_graph(4);
    faults::FaultPlan plan;
    plan.events.push_back(
        {0.5, faults::FaultKind::kLinkDown, kInvalidNode, canonical(Edge{1, 2})});
    plan.events.push_back(
        {30.0, faults::FaultKind::kLinkUp, kInvalidNode, canonical(Edge{1, 2})});

    const Workload wl = single_session(0, 1.0);
    const auto policy = make_policy(g, "flooding");

    EngineConfig config;
    config.sv_interval = 2.0;
    config.sv_slack = 60.0;

    TrafficEngine engine(g, *policy, config);
    engine.attach_faults(&plan);
    Rng rng(4);
    const TrafficResult r = engine.run(wl, rng);
    ASSERT_EQ(r.sessions.size(), 1u);
    EXPECT_EQ(r.sessions[0].outcome, faults::DeliveryOutcome::kDelivered);
    EXPECT_EQ(r.sessions[0].delivered_up, 4u);
    EXPECT_GE(r.pulls_sent, 1u);
    EXPECT_GE(r.repairs_served, 1u);
    EXPECT_GT(r.sessions[0].last_delivery, 30.0);  // healed after the link came back

    // Control: with the recovery plane off the same run ends degraded.
    EngineConfig no_recovery = config;
    no_recovery.recovery = false;
    TrafficEngine blind(g, *policy, no_recovery);
    blind.attach_faults(&plan);
    Rng rng2(4);
    const TrafficResult r2 = blind.run(wl, rng2);
    EXPECT_EQ(r2.sessions[0].outcome, faults::DeliveryOutcome::kDegraded);
    EXPECT_EQ(r2.pulls_sent, 0u);
}

TEST(TrafficEngine, CrashedSourceStoreSurvivesReboot) {
    // The session arrives while its source is down: nothing is transmitted,
    // but the DTN-style store keeps the message, so after recovery the
    // source's summary beacons seed the pull plane and delivery completes.
    const Graph g = path_graph(3);
    faults::FaultPlan plan;
    plan.events.push_back({0.5, faults::FaultKind::kNodeCrash, 0, Edge{}});
    plan.events.push_back({8.0, faults::FaultKind::kNodeRecover, 0, Edge{}});

    const Workload wl = single_session(0, 1.0);
    const auto policy = make_policy(g, "flooding");
    EngineConfig config;
    config.sv_interval = 2.0;

    TrafficEngine engine(g, *policy, config);
    engine.attach_faults(&plan);
    Rng rng(13);
    const TrafficResult r = engine.run(wl, rng);
    EXPECT_EQ(r.sessions[0].outcome, faults::DeliveryOutcome::kDelivered);
    EXPECT_EQ(r.sessions[0].delivered_up, 3u);
    EXPECT_GE(r.repairs_served, 1u);
}

TEST(TrafficEngine, ChurnSmokeClassifiesEverySessionWithBoundedCaches) {
    // The ISSUE acceptance shape in miniature: >1000 concurrent sessions
    // through one network under a crash+churn plan — the run terminates,
    // every session lands in exactly one outcome class, and no per-node
    // cache ever exceeds its configured ceiling.
    const Graph g = grid_graph(5, 5);
    TrafficConfig traffic;
    traffic.sessions = 1100;
    traffic.rate = 2.0;
    const Workload wl = make_workload(traffic, g.node_count(), 21, 0);

    faults::FaultSpec spec;
    spec.crash_rate = 0.15;
    spec.crash_window = wl.horizon * 0.8;
    spec.recover_probability = 0.7;
    spec.link_churn_rate = 0.2;
    spec.churn_window = wl.horizon * 0.8;
    spec.protect_source = false;
    const faults::FaultPlan plan = faults::make_fault_plan(spec, g, 0, 55, 0);

    const auto policy = make_policy(g, "generic-fr");
    EngineConfig config;
    config.cache = DupCacheConfig{.max_sources = 16, .window = 64};  // force evictions/slides
    TrafficEngine engine(g, *policy, config);
    engine.attach_faults(&plan);
    Rng rng(8);
    const TrafficResult r = engine.run(wl, rng);

    ASSERT_EQ(r.sessions.size(), 1100u);
    EXPECT_EQ(r.delivered + r.degraded + r.partitioned, 1100u);
    for (const SessionOutcome& s : r.sessions) {
        EXPECT_EQ(s.up_count, r.sessions.front().up_count);
        EXPECT_LE(s.delivered_up, s.up_count);
        EXPECT_LE(s.missed_reachable, s.reachable_count);
    }
    EXPECT_GT(r.cache_ceiling_bytes, 0u);
    EXPECT_LE(r.cache_peak_bytes, r.cache_ceiling_bytes);
    // The tight cache config must actually exercise the bounded paths.
    EXPECT_GT(r.cache_evictions, 0u);
    // Latency histogram covers exactly the sessions with a remote delivery.
    const std::uint64_t sampled =
        std::accumulate(r.latency_hist.begin(), r.latency_hist.end(), std::uint64_t{0});
    std::uint64_t remote = 0;
    for (const SessionOutcome& s : r.sessions) {
        if (s.last_delivery > s.start_time) ++remote;
    }
    EXPECT_EQ(sampled, remote);
}

}  // namespace
}  // namespace adhoc::traffic
