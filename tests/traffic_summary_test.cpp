// Unit tests for summary vectors: canonical summarization of a duplicate
// cache, the wire codec, and the gap-diff that drives recovery pulls.

#include "traffic/summary_vector.hpp"

#include <gtest/gtest.h>

#include "traffic/dup_cache.hpp"

namespace adhoc::traffic {
namespace {

TEST(SummaryVector, SummarizeSortsAndTrimsTrailingZeros) {
    DupCache cache(DupCacheConfig{.max_sources = 8, .window = 128});
    cache.insert(7, 0);
    cache.insert(2, 3);
    const SummaryVector sv = summarize(cache);
    ASSERT_EQ(sv.sources.size(), 2u);
    EXPECT_EQ(sv.sources[0].source, 2u);  // sorted ascending
    EXPECT_EQ(sv.sources[1].source, 7u);
    // 128-bit windows with only low bits set: second word trimmed.
    EXPECT_EQ(sv.sources[0].bits.size(), 1u);
    EXPECT_EQ(sv.sources[1].bits.size(), 1u);
}

TEST(SummaryVector, AdvertisedKeysMatchHoldings) {
    DupCache cache(DupCacheConfig{.max_sources = 8, .window = 64});
    cache.insert(4, 10);
    cache.insert(4, 12);
    cache.insert(9, 0);
    const std::vector<SessionKey> keys = advertised_keys(summarize(cache));
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], (SessionKey{4, 10}));
    EXPECT_EQ(keys[1], (SessionKey{4, 12}));
    EXPECT_EQ(keys[2], (SessionKey{9, 0}));
    for (const SessionKey key : keys) EXPECT_TRUE(cache.holds(key.source, key.seq));
}

TEST(SummaryVector, EncodeDecodeRoundTrip) {
    DupCache cache(DupCacheConfig{.max_sources = 8, .window = 192});
    for (std::uint32_t q : {0u, 1u, 70u, 150u}) cache.insert(5, q);
    cache.insert(11, 42);
    const SummaryVector sv = summarize(cache);
    const std::vector<std::uint8_t> wire = encode(sv);
    EXPECT_EQ(wire.size(), encoded_size(sv));

    SummaryVector decoded;
    ASSERT_TRUE(decode(wire.data(), wire.size(), &decoded));
    EXPECT_EQ(decoded, sv);
}

TEST(SummaryVector, EmptyVectorRoundTrips) {
    const SummaryVector sv;
    const std::vector<std::uint8_t> wire = encode(sv);
    EXPECT_EQ(wire.size(), 2u);
    SummaryVector decoded;
    ASSERT_TRUE(decode(wire.data(), wire.size(), &decoded));
    EXPECT_TRUE(decoded.sources.empty());
}

TEST(SummaryVector, DecodeRejectsMalformedInput) {
    DupCache cache;
    cache.insert(1, 0);
    cache.insert(2, 0);
    const std::vector<std::uint8_t> wire = encode(summarize(cache));
    SummaryVector out;
    // Truncations at every prefix length must fail, never read past end.
    for (std::size_t len = 0; len < wire.size(); ++len) {
        EXPECT_FALSE(decode(wire.data(), len, &out)) << "accepted truncation " << len;
    }
    // Trailing garbage.
    std::vector<std::uint8_t> padded = wire;
    padded.push_back(0);
    EXPECT_FALSE(decode(padded.data(), padded.size(), &out));
    // Unsorted sources: swap the two source ids in place.
    std::vector<std::uint8_t> unsorted = wire;
    unsorted[2] = 2;   // first source id (little-endian low byte)
    unsorted[2 + 4 + 4 + 2 + 8] = 1;  // second source id
    EXPECT_FALSE(decode(unsorted.data(), unsorted.size(), &out));
}

TEST(SummaryVector, MissingKeysDiffsAgainstLocalCache) {
    DupCache theirs(DupCacheConfig{.max_sources = 8, .window = 64});
    theirs.insert(3, 0);
    theirs.insert(3, 1);
    theirs.insert(8, 5);
    DupCache mine(DupCacheConfig{.max_sources = 8, .window = 64});
    mine.insert(3, 1);

    const SummaryVector sv = summarize(theirs);
    const std::vector<SessionKey> gaps = missing_keys(sv, mine);
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_EQ(gaps[0], (SessionKey{3, 0}));
    EXPECT_EQ(gaps[1], (SessionKey{8, 5}));

    const std::vector<SessionKey> capped = missing_keys(sv, mine, /*limit=*/1);
    ASSERT_EQ(capped.size(), 1u);
    EXPECT_EQ(capped[0], (SessionKey{3, 0}));
}

TEST(SummaryVector, CanonicalEncodingIsDeterministic) {
    // Insertion order must not leak into the wire bytes.
    DupCache a(DupCacheConfig{.max_sources = 8, .window = 64});
    a.insert(1, 0);
    a.insert(2, 7);
    DupCache b(DupCacheConfig{.max_sources = 8, .window = 64});
    b.insert(2, 7);
    b.insert(1, 0);
    EXPECT_EQ(encode(summarize(a)), encode(summarize(b)));
}

}  // namespace
}  // namespace adhoc::traffic
