// Unit tests for the deterministic traffic generator: arrival process
// shapes, per-source sequence numbering, and seed-derivation determinism.

#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace adhoc::traffic {
namespace {

TEST(Workload, DeterministicForIdenticalInputs) {
    TrafficConfig config;
    config.sessions = 200;
    const Workload a = make_workload(config, 50, 1234, 7);
    const Workload b = make_workload(config, 50, 1234, 7);
    ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
    EXPECT_TRUE(std::equal(a.arrivals.begin(), a.arrivals.end(), b.arrivals.begin()));
    EXPECT_DOUBLE_EQ(a.horizon, b.horizon);
}

TEST(Workload, RunIndexSelectsDisjointSchedules) {
    TrafficConfig config;
    config.sessions = 100;
    const Workload a = make_workload(config, 50, 1234, 0);
    const Workload b = make_workload(config, 50, 1234, 1);
    EXPECT_FALSE(std::equal(a.arrivals.begin(), a.arrivals.end(), b.arrivals.begin()));
}

TEST(Workload, ArrivalsAscendWithDenseSeqsPerSource) {
    TrafficConfig config;
    config.sessions = 500;
    config.rate = 3.0;
    const Workload wl = make_workload(config, 30, 99, 0);
    ASSERT_EQ(wl.arrivals.size(), 500u);
    std::vector<std::uint32_t> next_seq(30, 0);
    double last = 0.0;
    for (const SessionArrival& a : wl.arrivals) {
        EXPECT_GE(a.start_time, last);
        last = a.start_time;
        ASSERT_LT(a.source, 30u);
        EXPECT_EQ(a.seq, next_seq[a.source]++);  // dense, in arrival order
    }
    EXPECT_DOUBLE_EQ(wl.horizon, last);
}

TEST(Workload, PoissonMeanGapTracksRate) {
    TrafficConfig config;
    config.sessions = 4000;
    config.rate = 2.0;
    const Workload wl = make_workload(config, 20, 5, 0);
    // Mean inter-arrival of Poisson(rate) is 1/rate; 4000 samples puts the
    // sample mean within a loose tolerance.
    const double mean = wl.horizon / static_cast<double>(config.sessions);
    EXPECT_NEAR(mean, 0.5, 0.05);
}

TEST(Workload, SourceSubsetRestrictsOrigins) {
    TrafficConfig config;
    config.sessions = 300;
    config.source_count = 4;
    const Workload wl = make_workload(config, 50, 77, 2);
    std::set<NodeId> seen;
    for (const SessionArrival& a : wl.arrivals) seen.insert(a.source);
    EXPECT_LE(seen.size(), 4u);
    EXPECT_GE(seen.size(), 2u);  // 300 draws over 4 sources hit most of them
}

TEST(Workload, BurstyArrivalsLandInOnPhases) {
    TrafficConfig config;
    config.process = ArrivalProcess::kBursty;
    config.sessions = 1000;
    config.rate = 1.0;
    config.burst_on = 5.0;
    config.burst_off = 15.0;
    const Workload wl = make_workload(config, 20, 11, 0);
    const double cycle = config.burst_on + config.burst_off;
    for (const SessionArrival& a : wl.arrivals) {
        const double phase = a.start_time - std::floor(a.start_time / cycle) * cycle;
        EXPECT_LT(phase, config.burst_on) << "arrival at " << a.start_time << " in off-phase";
    }
}

TEST(Workload, BurstyIsBurstierThanPoisson) {
    TrafficConfig poisson;
    poisson.sessions = 2000;
    TrafficConfig bursty = poisson;
    bursty.process = ArrivalProcess::kBursty;
    const Workload p = make_workload(poisson, 20, 42, 0);
    const Workload b = make_workload(bursty, 20, 42, 0);
    // Same offered session count; the bursty horizon stretches because of
    // the dead off-phases while intra-burst gaps shrink.
    const auto max_gap = [](const Workload& wl) {
        double gap = 0.0;
        for (std::size_t i = 1; i < wl.arrivals.size(); ++i) {
            gap = std::max(gap, wl.arrivals[i].start_time - wl.arrivals[i - 1].start_time);
        }
        return gap;
    };
    EXPECT_GT(max_gap(b), max_gap(p));
}

}  // namespace
}  // namespace adhoc::traffic
