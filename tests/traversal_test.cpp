// Unit tests for BFS utilities, components and induced subgraphs.

#include "graph/traversal.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

TEST(Traversal, BfsDistancesOnPath) {
    const Graph g = path_graph(5);
    const auto d = bfs_distances(g, 0);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(Traversal, BfsDistancesUnreachable) {
    Graph g(4);
    g.add_edge(0, 1);  // 2 and 3 isolated
    const auto d = bfs_distances(g, 0);
    EXPECT_EQ(d[1], 1u);
    EXPECT_EQ(d[2], kUnreachable);
    EXPECT_EQ(d[3], kUnreachable);
}

TEST(Traversal, FilteredBfsRespectsMask) {
    const Graph g = path_graph(5);
    std::vector<char> allowed(5, 1);
    allowed[2] = 0;  // block the middle
    const auto d = bfs_distances_filtered(g, 0, allowed);
    EXPECT_EQ(d[1], 1u);
    EXPECT_EQ(d[2], kUnreachable);
    EXPECT_EQ(d[3], kUnreachable);
}

TEST(Traversal, FilteredBfsBlockedSource) {
    const Graph g = path_graph(3);
    std::vector<char> allowed(3, 1);
    allowed[0] = 0;
    const auto d = bfs_distances_filtered(g, 0, allowed);
    EXPECT_EQ(d[0], kUnreachable);
    EXPECT_EQ(d[1], kUnreachable);
}

TEST(Traversal, Connectivity) {
    EXPECT_TRUE(is_connected(path_graph(6)));
    EXPECT_TRUE(is_connected(Graph(1)));
    EXPECT_TRUE(is_connected(Graph(0)));
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_FALSE(is_connected(g));
}

TEST(Traversal, ComponentsLabeling) {
    Graph g(5);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const auto labels = connected_components(g);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[2], labels[3]);
    EXPECT_NE(labels[0], labels[2]);
    EXPECT_NE(labels[4], labels[0]);
    EXPECT_EQ(component_count(labels), 3u);
}

TEST(Traversal, FilteredComponents) {
    const Graph g = path_graph(5);  // 0-1-2-3-4
    std::vector<char> allowed{1, 1, 0, 1, 1};
    const auto labels = connected_components_filtered(g, allowed);
    EXPECT_EQ(labels[2], kUnreachable);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[3], labels[4]);
    EXPECT_NE(labels[0], labels[3]);
    EXPECT_EQ(component_count(labels), 2u);
}

TEST(Traversal, ComponentCountEmptyMask) {
    const Graph g = path_graph(3);
    const auto labels = connected_components_filtered(g, {0, 0, 0});
    EXPECT_EQ(component_count(labels), 0u);
}

TEST(Traversal, ShortestPathEndpoints) {
    const Graph g = cycle_graph(6);
    const auto p = shortest_path(g, 0, 3);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->size(), 4u);  // 3 hops either way
    EXPECT_EQ(p->front(), 0u);
    EXPECT_EQ(p->back(), 3u);
    for (std::size_t i = 0; i + 1 < p->size(); ++i) {
        EXPECT_TRUE(g.has_edge((*p)[i], (*p)[i + 1]));
    }
}

TEST(Traversal, ShortestPathSameNode) {
    const Graph g = path_graph(3);
    const auto p = shortest_path(g, 1, 1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->size(), 1u);
}

TEST(Traversal, ShortestPathUnreachable) {
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(Traversal, FilteredShortestPathAvoidsBlockedNodes) {
    const Graph g = cycle_graph(6);
    std::vector<char> allowed(6, 1);
    allowed[1] = 0;  // must go the long way 0-5-4-3
    const auto p = shortest_path_filtered(g, 0, 3, allowed);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->size(), 4u);
    EXPECT_EQ((*p)[1], 5u);
}

TEST(Traversal, DiameterOfPathAndCompleteGraph) {
    EXPECT_EQ(diameter(path_graph(5)), 4u);
    EXPECT_EQ(diameter(complete_graph(7)), 1u);
    EXPECT_EQ(diameter(Graph(1)), 0u);
    Graph g(3);
    g.add_edge(0, 1);
    EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Traversal, InducedSubgraphDropsOutsideEdges) {
    const Graph g = complete_graph(4);
    const Graph sub = induced_subgraph(g, {1, 1, 1, 0});
    EXPECT_EQ(sub.edge_count(), 3u);  // triangle on {0,1,2}
    EXPECT_EQ(sub.degree(3), 0u);
}

}  // namespace
}  // namespace adhoc
