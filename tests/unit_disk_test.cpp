// Unit tests for the paper's random unit-disk-graph generator: exactly
// nd/2 links, connectivity rejection, determinism under seeding.

#include "graph/unit_disk.hpp"

#include <gtest/gtest.h>

#include "graph/traversal.hpp"

namespace adhoc {
namespace {

TEST(UnitDisk, GraphFromPositionsRespectsRange) {
    const std::vector<Point2D> pts{{0, 0}, {3, 0}, {0, 4}};
    const Graph g = unit_disk_graph(pts, 3.5);
    EXPECT_TRUE(g.has_edge(0, 1));   // distance 3
    EXPECT_FALSE(g.has_edge(0, 2));  // distance 4
    EXPECT_FALSE(g.has_edge(1, 2));  // distance 5
}

TEST(UnitDisk, RangeForLinkCountHitsExactCount) {
    Rng rng(7);
    std::vector<Point2D> pts(30);
    for (auto& p : pts) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
    for (std::size_t links : {10u, 45u, 100u}) {
        const auto r = range_for_link_count(pts, links);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(unit_disk_graph(pts, *r).edge_count(), links);
    }
}

TEST(UnitDisk, RangeForLinkCountRejectsOutOfRange) {
    const std::vector<Point2D> pts{{0, 0}, {1, 0}, {2, 0}};
    EXPECT_FALSE(range_for_link_count(pts, 0).has_value());
    EXPECT_FALSE(range_for_link_count(pts, 4).has_value());  // only 3 pairs
}

TEST(UnitDisk, RangeForAllPairs) {
    const std::vector<Point2D> pts{{0, 0}, {1, 0}, {2, 0}};
    const auto r = range_for_link_count(pts, 3);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(unit_disk_graph(pts, *r).edge_count(), 3u);
}

TEST(UnitDisk, GeneratedNetworkMatchesPaperRecipe) {
    Rng rng(42);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const auto net = generate_network(params, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->graph.node_count(), 50u);
    EXPECT_EQ(net->graph.edge_count(), 150u);  // n*d/2
    EXPECT_TRUE(is_connected(net->graph));
    EXPECT_EQ(net->positions.size(), 50u);
    EXPECT_GT(net->range, 0.0);
}

TEST(UnitDisk, DenseNetworks) {
    Rng rng(43);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 18.0;
    const auto net = generate_network(params, rng);
    ASSERT_TRUE(net.has_value());
    EXPECT_EQ(net->graph.edge_count(), 360u);
    EXPECT_TRUE(is_connected(net->graph));
}

TEST(UnitDisk, DeterministicUnderSeed) {
    UnitDiskParams params;
    params.node_count = 30;
    params.average_degree = 6.0;
    Rng a(99), b(99);
    const auto na = generate_network(params, a);
    const auto nb = generate_network(params, b);
    ASSERT_TRUE(na && nb);
    EXPECT_EQ(na->graph, nb->graph);
}

TEST(UnitDisk, DifferentSeedsDiffer) {
    UnitDiskParams params;
    params.node_count = 30;
    params.average_degree = 6.0;
    Rng a(1), b(2);
    const auto na = generate_network(params, a);
    const auto nb = generate_network(params, b);
    ASSERT_TRUE(na && nb);
    EXPECT_NE(na->graph, nb->graph);
}

TEST(UnitDisk, PositionsInsideArea) {
    Rng rng(5);
    UnitDiskParams params;
    params.node_count = 25;
    params.average_degree = 6.0;
    params.area_side = 50.0;
    const auto net = generate_network(params, rng);
    ASSERT_TRUE(net.has_value());
    for (const Point2D& p : net->positions) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LT(p.x, 50.0);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LT(p.y, 50.0);
    }
}

TEST(UnitDisk, CheckedGeneratorThrowsOnImpossibleBudget) {
    // Average degree 2 on 100 nodes is essentially never connected; with a
    // budget of 1 attempt the generator must give up.
    Rng rng(3);
    UnitDiskParams params;
    params.node_count = 100;
    params.average_degree = 2.0;
    params.max_attempts = 1;
    EXPECT_THROW((void)generate_network_checked(params, rng), std::runtime_error);
}

TEST(UnitDisk, RangeMatchesEdgeSetGeometry) {
    Rng rng(11);
    UnitDiskParams params;
    params.node_count = 20;
    params.average_degree = 6.0;
    const auto net = generate_network(params, rng);
    ASSERT_TRUE(net.has_value());
    // Every edge within range, every non-edge beyond it.
    for (NodeId u = 0; u < 20; ++u) {
        for (NodeId v = u + 1; v < 20; ++v) {
            const double d = distance(net->positions[u], net->positions[v]);
            EXPECT_EQ(net->graph.has_edge(u, v), d <= net->range) << u << "," << v;
        }
    }
}

}  // namespace
}  // namespace adhoc
