/// Property tests for the incremental k-hop view cache: under randomized
/// churn plans, lazily recompiled views must be bit-identical to a full
/// recompilation of every view (`reference::recompile_all_views`), and the
/// invalidation must actually be scoped (far fewer recompiles than n).

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/view_cache.hpp"
#include "graph/unit_disk.hpp"

namespace adhoc {
namespace {

void expect_same_topology(const LocalTopology& got, const LocalTopology& want,
                          const std::string& where) {
    ASSERT_EQ(got.center, want.center) << where;
    ASSERT_EQ(got.hops, want.hops) << where;
    ASSERT_EQ(got.visible, want.visible) << where;
    ASSERT_EQ(got.members, want.members) << where;
    ASSERT_EQ(got.compact.offsets, want.compact.offsets) << where;
    ASSERT_EQ(got.compact.edges, want.compact.edges) << where;
    ASSERT_EQ(got.graph.node_count(), want.graph.node_count()) << where;
    for (NodeId u = 0; u < want.graph.node_count(); ++u) {
        const auto a = got.graph.neighbors(u);
        const auto b = want.graph.neighbors(u);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
            << where << " adjacency of node " << u;
    }
}

void expect_all_views_match(ViewCache& cache, const Graph& mirror, std::size_t k,
                            const std::string& where) {
    const auto expected = reference::recompile_all_views(mirror, k);
    for (NodeId v = 0; v < mirror.node_count(); ++v) {
        expect_same_topology(cache.view(v), expected[v],
                             where + " view of node " + std::to_string(v));
    }
}

/// A connected-ish random graph plus a pool of candidate edges to flap.
struct ChurnFixture {
    Graph graph{0};
    std::vector<Edge> pool;  ///< edges toggled by the plan

    explicit ChurnFixture(std::size_t n, std::uint64_t seed) : graph(n) {
        std::mt19937_64 rng(seed);
        std::uniform_int_distribution<NodeId> pick(0, static_cast<NodeId>(n - 1));
        for (NodeId v = 1; v < n; ++v) graph.add_edge(v, pick(rng) % v);  // spanning tree
        for (std::size_t i = 0; i < 3 * n; ++i) {
            const NodeId u = pick(rng);
            const NodeId v = pick(rng);
            if (u == v) continue;
            pool.push_back(u < v ? Edge{u, v} : Edge{v, u});
            if (i % 2 == 0 && !graph.has_edge(u, v)) graph.add_edge(u, v);
        }
    }
};

TEST(ViewCache, ExactModeMatchesFullRecompileUnderChurn) {
    for (const std::size_t k : {1u, 2u, 3u}) {
        ChurnFixture fx(60, 0xc0ffee00u + k);
        Graph mirror = fx.graph;
        ViewCache cache(fx.graph, k);
        std::mt19937_64 rng(0xdecade00u + k);

        for (std::size_t step = 0; step < 120; ++step) {
            const Edge& e = fx.pool[rng() % fx.pool.size()];
            if (mirror.has_edge(e.a, e.b)) {
                mirror.remove_edge(e.a, e.b);
                cache.remove_edge(e.a, e.b);
            } else {
                mirror.add_edge(e.a, e.b);
                cache.add_edge(e.a, e.b);
            }
            // Verify every view at a few checkpoints plus a random spot
            // check each step (full verification every step is O(n^2) BFS).
            if (step % 40 == 39) {
                expect_all_views_match(cache, mirror, k,
                                       "k=" + std::to_string(k) + " step " +
                                           std::to_string(step));
            } else {
                const NodeId v = static_cast<NodeId>(rng() % mirror.node_count());
                const auto want = local_topology(mirror, v, k);
                auto compiled = want;
                compile_topology(compiled);
                expect_same_topology(cache.view(v), compiled,
                                     "k=" + std::to_string(k) + " spot step " +
                                         std::to_string(step));
            }
        }
        expect_all_views_match(cache, mirror, k, "k=" + std::to_string(k) + " final");
    }
}

TEST(ViewCache, GlobalViewsInvalidateEverythingAndStillMatch) {
    ChurnFixture fx(24, 0xfeedbeef);
    Graph mirror = fx.graph;
    ViewCache cache(fx.graph, 0);  // k == 0: global information
    const Edge e = fx.pool.front();
    if (mirror.has_edge(e.a, e.b)) {
        mirror.remove_edge(e.a, e.b);
        cache.remove_edge(e.a, e.b);
    } else {
        mirror.add_edge(e.a, e.b);
        cache.add_edge(e.a, e.b);
    }
    EXPECT_EQ(cache.dirty_count(), mirror.node_count());
    expect_all_views_match(cache, mirror, 0, "global");
}

TEST(ViewCache, GeometryModeMatchesExactUnderRangeRespectingChurn) {
    // Unit-disk world: flapped links are always between nodes within range
    // (existing links removed, previously removed links restored), so the
    // geometric dirty ball is a sound superset of the hop ball.
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 6.0;
    Rng gen(0x5eed);
    const UnitDiskNetwork net = generate_network_checked(params, gen);
    const std::size_t k = 2;

    Graph mirror = net.graph;
    ViewCache cache(net.graph, k, &net.positions, net.range);
    std::vector<Edge> pool;
    for (NodeId u = 0; u < mirror.node_count(); ++u) {
        for (NodeId v : mirror.neighbors(u)) {
            if (u < v) pool.push_back({u, v});
        }
    }
    ASSERT_FALSE(pool.empty());

    std::mt19937_64 rng(0x9e09e0);
    for (std::size_t step = 0; step < 80; ++step) {
        const Edge& e = pool[rng() % pool.size()];
        if (mirror.has_edge(e.a, e.b)) {
            mirror.remove_edge(e.a, e.b);
            cache.remove_edge(e.a, e.b);
        } else {
            mirror.add_edge(e.a, e.b);
            cache.add_edge(e.a, e.b);
        }
        const NodeId v = static_cast<NodeId>(rng() % mirror.node_count());
        auto want = local_topology(mirror, v, k);
        compile_topology(want);
        expect_same_topology(cache.view(v), want, "geometry spot step " + std::to_string(step));
    }
    expect_all_views_match(cache, mirror, k, "geometry final");
    // The geometric ball is a superset of the hop ball but still local:
    // nothing near the scale of n-per-flap may have been recompiled.
    EXPECT_LT(cache.recompile_count(), 80 * mirror.node_count() / 4);
}

TEST(ViewCache, BatchedPrepareAllMatchesUnderWheelBoundaryChurn) {
    // ScaleEngine's access pattern: each window begins with a serial
    // `prepare_all()`, then parallel phases issue only const
    // `compiled_view()` reads. Between windows, churn flaps links whose
    // endpoints live in *different* wheels (v / block), the worst case for
    // the dirty ball because the invalidation must cross the partition the
    // engine parallelizes over. The cache must stay bit-identical to a full
    // recompilation and must stay incremental.
    const std::size_t n = 96;
    const std::size_t k = 2;
    const std::size_t wheels = 6;
    const std::size_t block = (n + wheels - 1) / wheels;
    ChurnFixture fx(n, 0xba7c4ed);
    Graph mirror = fx.graph;
    ViewCache cache(fx.graph, k);

    // Restrict the flap pool to wheel-boundary-crossing edges.
    std::vector<Edge> boundary;
    for (const Edge& e : fx.pool) {
        if (e.a / block != e.b / block) boundary.push_back(e);
    }
    ASSERT_GE(boundary.size(), 8u);

    std::mt19937_64 rng(0x5ca1ab1e);
    for (std::size_t window = 0; window < 24; ++window) {
        // Wheel-boundary link flap between windows.
        for (int flap = 0; flap < 2; ++flap) {
            const Edge& e = boundary[rng() % boundary.size()];
            if (mirror.has_edge(e.a, e.b)) {
                mirror.remove_edge(e.a, e.b);
                cache.remove_edge(e.a, e.b);
            } else {
                mirror.add_edge(e.a, e.b);
                cache.add_edge(e.a, e.b);
            }
        }

        // Window body: one serial prepare, then batched const reads grouped
        // by wheel, exactly like scan_wheel_generic.
        cache.prepare_all();
        const auto expected = reference::recompile_all_views(mirror, k);
        for (std::size_t w = 0; w < wheels; ++w) {
            const NodeId lo = static_cast<NodeId>(w * block);
            const NodeId hi =
                static_cast<NodeId>(std::min(n, (w + 1) * block));
            for (NodeId v = lo; v < hi; ++v) {
                ASSERT_FALSE(cache.is_dirty(v));
                expect_same_topology(cache.compiled_view(v), expected[v],
                                     "window " + std::to_string(window) +
                                         " wheel " + std::to_string(w) +
                                         " view " + std::to_string(v));
            }
        }
    }
    // A non-incremental cache would recompile all n views after every
    // window's flaps (24 * n here); the dirty-ball union must come in
    // strictly under that even on this dense graph where 2-hop balls are
    // a sizable fraction of n. (ScopedInvalidationTouchesOnlyTheBall covers
    // the sparse-topology tight bound.)
    EXPECT_LT(cache.recompile_count(), 24 * n);
    EXPECT_GT(cache.recompile_count(), 0u);
}

TEST(ViewCache, ScopedInvalidationTouchesOnlyTheBall) {
    // Path graph: flapping an edge in the middle can only dirty the 2k + 2
    // nodes within k hops of its endpoints.
    const std::size_t n = 400;
    const std::size_t k = 2;
    Graph g(n);
    for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
    ViewCache cache(g, k);

    cache.remove_edge(200, 201);
    EXPECT_LE(cache.dirty_count(), 2 * k + 2);
    cache.add_edge(200, 201);
    EXPECT_LE(cache.dirty_count(), 2 * (2 * k + 2));

    for (NodeId v = 0; v < n; ++v) (void)cache.view(v);
    EXPECT_LT(cache.recompile_count(), n / 10);  // scoped, not O(n) per flap

    // No-op flaps dirty nothing.
    const std::size_t before = cache.dirty_count();
    cache.add_edge(200, 201);   // already present
    cache.remove_edge(10, 300); // never existed
    EXPECT_EQ(cache.dirty_count(), before);
}

}  // namespace
}  // namespace adhoc
