// Unit tests for views, including the paper's Figure 1 view evolution.

#include "core/view.hpp"

#include <gtest/gtest.h>

namespace adhoc {
namespace {

// Figure 1: triangle u-v-w (ids 0=u, 1=v, 2=w); three snapshots of one
// broadcast from v.
class Figure1 : public ::testing::Test {
  protected:
    Figure1() : g_(3), keys_(Graph(3), PriorityScheme::kId) {
        g_.add_edge(0, 1);
        g_.add_edge(1, 2);
        g_.add_edge(0, 2);
        keys_ = PriorityKeys(g_, PriorityScheme::kId);
    }
    Graph g_;
    PriorityKeys keys_;
};

TEST_F(Figure1, ViewA_AllUnvisited) {
    const View view(g_, {1, 1, 1},
                    {NodeStatus::kUnvisited, NodeStatus::kUnvisited, NodeStatus::kUnvisited},
                    &keys_);
    // Pr(u) < Pr(v) < Pr(w) by id.
    EXPECT_LT(view.priority(0), view.priority(1));
    EXPECT_LT(view.priority(1), view.priority(2));
}

TEST_F(Figure1, ViewB_SourceVisited) {
    const View view(g_, {1, 1, 1},
                    {NodeStatus::kUnvisited, NodeStatus::kVisited, NodeStatus::kUnvisited},
                    &keys_);
    // Pr(v) = (2, v) dominates both unvisited nodes.
    EXPECT_GT(view.priority(1), view.priority(2));
    EXPECT_GT(view.priority(1), view.priority(0));
    EXPECT_GT(view.priority(2), view.priority(0));  // (1,w) > (1,u)
}

TEST_F(Figure1, ViewC_TwoVisited) {
    const View view(g_, {1, 1, 1},
                    {NodeStatus::kUnvisited, NodeStatus::kVisited, NodeStatus::kVisited},
                    &keys_);
    EXPECT_GT(view.priority(2), view.priority(1));  // (2,w) > (2,v)
    EXPECT_GT(view.priority(1), view.priority(0));
}

TEST(View, InvisibleNodesGetBottomPriority) {
    const Graph g = path_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view(g, {1, 1, 0},
                    {NodeStatus::kUnvisited, NodeStatus::kUnvisited, NodeStatus::kVisited},
                    &keys);
    EXPECT_EQ(view.status(2), NodeStatus::kInvisible);  // visited but invisible
    EXPECT_LT(view.priority(2), view.priority(0));
}

TEST(View, MakeStaticViewHasNoBroadcastState) {
    const Graph g = cycle_graph(6);
    const PriorityKeys keys(g, PriorityScheme::kId);
    const View view = make_static_view(g, 0, 2, keys);
    for (NodeId v = 0; v < 6; ++v) {
        EXPECT_NE(view.status(v), NodeStatus::kVisited);
        EXPECT_NE(view.status(v), NodeStatus::kDesignated);
    }
    // k=2 on C6 from node 0: nodes 3 is at distance 3 -> invisible.
    EXPECT_FALSE(view.visible(3));
    EXPECT_TRUE(view.visible(2));
}

TEST(View, MakeDynamicViewClampsInvisibleBroadcastState) {
    const Graph g = path_graph(5);
    const PriorityKeys keys(g, PriorityScheme::kId);
    std::vector<char> visited(5, 0), designated(5, 0);
    visited[4] = 1;  // visited, but 4 hops from center 0
    designated[1] = 1;
    const View view = make_dynamic_view(g, 0, 2, keys, visited, designated);
    EXPECT_EQ(view.status(4), NodeStatus::kInvisible);
    EXPECT_EQ(view.status(1), NodeStatus::kDesignated);
    EXPECT_EQ(view.status(0), NodeStatus::kUnvisited);
}

TEST(View, VisitedTrumpsDesignatedInStatus) {
    const Graph g = path_graph(3);
    const PriorityKeys keys(g, PriorityScheme::kId);
    std::vector<char> visited{0, 1, 0}, designated{0, 1, 1};
    const View view = make_dynamic_view(g, 1, 0, keys, visited, designated);
    EXPECT_EQ(view.status(1), NodeStatus::kVisited);
    EXPECT_EQ(view.status(2), NodeStatus::kDesignated);
}

TEST(View, LocalPriorityNeverExceedsGlobal) {
    // Theorem 2 precondition: Pr'(v) <= Pr(v) element-wise for every local
    // view.
    const Graph g = grid_graph(3, 3);
    const PriorityKeys keys(g, PriorityScheme::kDegree);
    std::vector<char> visited(9, 0), designated(9, 0);
    visited[8] = 1;
    visited[4] = 1;
    const View global = make_dynamic_view(g, 0, 0, keys, visited, designated);
    for (std::size_t k = 1; k <= 4; ++k) {
        const View local = make_dynamic_view(g, 0, k, keys, visited, designated);
        for (NodeId v = 0; v < 9; ++v) {
            EXPECT_LE(local.priority(v), global.priority(v)) << "k=" << k << " v=" << v;
        }
    }
}

}  // namespace
}  // namespace adhoc
