// Unit tests for the broadcast-state wire format.

#include "io/wire.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace adhoc {
namespace {

BroadcastState sample_state() {
    BroadcastState s;
    s.history = {{7, {1, 2, 3}}, {9, {}}, {11, {4}}};
    s.sender_two_hop = {20, 21, 22};
    return s;
}

TEST(Wire, RoundTrip) {
    const BroadcastState s = sample_state();
    const auto bytes = encode_state(s);
    const auto decoded = decode_state(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, s);
}

TEST(Wire, EmptyStateRoundTrip) {
    const BroadcastState s;
    const auto bytes = encode_state(s);
    EXPECT_EQ(bytes.size(), 3u);  // counts only
    const auto decoded = decode_state(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, s);
}

TEST(Wire, EncodedSizeMatchesEncoding) {
    for (const BroadcastState& s : {BroadcastState{}, sample_state()}) {
        EXPECT_EQ(encode_state(s).size(), encoded_size(s));
    }
}

TEST(Wire, TruncatedInputRejected) {
    const auto bytes = encode_state(sample_state());
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + static_cast<long>(cut));
        EXPECT_FALSE(decode_state(prefix).has_value()) << "prefix length " << cut;
    }
}

TEST(Wire, TrailingGarbageRejected) {
    auto bytes = encode_state(sample_state());
    bytes.push_back(0xFF);
    EXPECT_FALSE(decode_state(bytes).has_value());
}

TEST(Wire, EmptyBufferRejected) {
    EXPECT_FALSE(decode_state({}).has_value());
}

TEST(Wire, RandomizedRoundTrips) {
    Rng rng(31);
    for (int trial = 0; trial < 200; ++trial) {
        BroadcastState s;
        const std::size_t records = rng.index(5);
        for (std::size_t i = 0; i < records; ++i) {
            VisitedRecord rec;
            rec.node = static_cast<NodeId>(rng.index(1000));
            const std::size_t designated = rng.index(4);
            for (std::size_t j = 0; j < designated; ++j) {
                rec.designated.push_back(static_cast<NodeId>(rng.index(1000)));
            }
            s.history.push_back(std::move(rec));
        }
        const std::size_t two_hop = rng.index(10);
        for (std::size_t i = 0; i < two_hop; ++i) {
            s.sender_two_hop.push_back(static_cast<NodeId>(rng.index(1000)));
        }
        const auto decoded = decode_state(encode_state(s));
        ASSERT_TRUE(decoded.has_value()) << "trial " << trial;
        EXPECT_EQ(*decoded, s) << "trial " << trial;
    }
}

TEST(Wire, LargeIdsSurvive) {
    BroadcastState s;
    s.history = {{0xFFFFFFFEu, {0xDEADBEEFu}}};
    const auto decoded = decode_state(encode_state(s));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->history[0].node, 0xFFFFFFFEu);
    EXPECT_EQ(decoded->history[0].designated[0], 0xDEADBEEFu);
}

}  // namespace
}  // namespace adhoc
