// Unit tests for Wu & Li's marking process with Rules 1 and 2.

#include "algorithms/wu_li.hpp"

#include <gtest/gtest.h>

#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

namespace adhoc {
namespace {

TEST(WuLi, CompleteGraphHasNoGateways) {
    const Graph g = complete_graph(5);
    const auto fwd = wu_li_forward_set(g, {});
    EXPECT_EQ(set_size(fwd), 0u);  // marking never fires
}

TEST(WuLi, PathInteriorAreGateways) {
    const Graph g = path_graph(5);
    const auto fwd = wu_li_forward_set(g, {});
    EXPECT_FALSE(fwd[0]);
    EXPECT_TRUE(fwd[1]);
    EXPECT_TRUE(fwd[2]);
    EXPECT_TRUE(fwd[3]);
    EXPECT_FALSE(fwd[4]);
}

TEST(WuLi, Rule1PrunesDominatedGateway) {
    // Node 1 and node 3 both see neighbors {0, 2} unconnected; N[1] ⊆ N[3]
    // and id(1) < id(3): Rule 1 prunes node 1.
    Graph g(4);
    g.add_edge(1, 0);
    g.add_edge(1, 2);
    g.add_edge(3, 0);
    g.add_edge(3, 2);
    g.add_edge(1, 3);
    const auto fwd = wu_li_forward_set(g, {});
    EXPECT_FALSE(fwd[1]);
    EXPECT_TRUE(fwd[3]);
}

TEST(WuLi, Rule2PrunesViaConnectedPair) {
    // Node 1's neighbors {0, 2, 4} are jointly covered by connected pair
    // (3, 5): N(1) ⊆ N[3] ∪ N[5], ids 3,5 > 1.
    Graph g(6);
    g.add_edge(1, 0);
    g.add_edge(1, 2);
    g.add_edge(1, 4);
    g.add_edge(3, 0);
    g.add_edge(3, 2);
    g.add_edge(5, 4);
    g.add_edge(3, 5);
    g.add_edge(3, 1);  // coverage nodes must be within 1 hop for k=2
    g.add_edge(5, 1);
    const auto fwd = wu_li_forward_set(g, {});
    EXPECT_FALSE(fwd[1]);
}

TEST(WuLi, ThreeHopAllowsNeighborNeighborCoverage) {
    // Coverage node 4 is two hops from node 1 (via node 3): only the 3-hop
    // variant may use it.  N(1) = {0, 2, 3}; N[4] ⊇ {0, 2, 3}.
    Graph g(5);
    g.add_edge(1, 0);
    g.add_edge(1, 2);
    g.add_edge(1, 3);
    g.add_edge(4, 0);
    g.add_edge(4, 2);
    g.add_edge(4, 3);
    const auto fwd2 = wu_li_forward_set(g, {.hops = 2});
    EXPECT_TRUE(fwd2[1]);  // 4 not a neighbor: invisible to Rule 1 at k=2
    const auto fwd3 = wu_li_forward_set(g, {.hops = 3});
    EXPECT_FALSE(fwd3[1]);
}

TEST(WuLi, GatewaySetIsCdsOnRandomNetworks) {
    Rng rng(17);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    for (int i = 0; i < 10; ++i) {
        const auto net = generate_network_checked(params, rng);
        for (std::size_t hops : {2u, 3u}) {
            const auto fwd = wu_li_forward_set(net.graph, {.hops = hops});
            EXPECT_TRUE(is_cds(net.graph, fwd)) << "iteration " << i << " hops " << hops;
        }
    }
}

TEST(WuLi, DegreePriorityAlsoYieldsCds) {
    Rng rng(23);
    UnitDiskParams params;
    params.node_count = 40;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    const auto fwd =
        wu_li_forward_set(net.graph, {.hops = 2, .priority = PriorityScheme::kDegree});
    EXPECT_TRUE(is_cds(net.graph, fwd));
}

TEST(WuLi, BroadcastDeliversEverywhere) {
    const WuLiAlgorithm algo;
    const Graph g = grid_graph(4, 5);
    Rng rng(3);
    for (NodeId src : {0u, 7u, 19u}) {
        const auto result = algo.broadcast(g, src, rng);
        EXPECT_TRUE(result.full_delivery) << "src " << src;
    }
}

TEST(WuLi, NameMentionsConfig) {
    EXPECT_NE(WuLiAlgorithm({.hops = 3}).name().find("k=3"), std::string::npos);
}

}  // namespace
}  // namespace adhoc
