#!/usr/bin/env python3
"""Microbenchmark regression gate.

Compares a fresh bench_micro run (schema adhoc-micro-v1) against the
committed baseline and fails when any kernel's *speedup ratio* regressed
by more than the allowed fraction.  Ratios — optimized time relative to
the reference implementation measured in the same process — are stable
across machines and CI runners, unlike absolute nanoseconds, so the gate
catches "someone slowed the optimized path back down" without flaking on
runner speed.

Usage:
    check_bench.py BASELINE.json CURRENT.json [--max-regression 0.25]

Exit status: 0 = within bounds, 1 = regression / mismatch / missing kernel.
"""

import argparse
import json
import sys


def load_kernels(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "adhoc-micro-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {(k["name"], k["n"]): k for k in doc["kernels"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop in speedup (default 0.25)")
    parser.add_argument("--healthy", type=float, default=20.0,
                        help="speedups at or above this always pass (default 20); "
                             "two-orders-of-magnitude ratios are noise-dominated, and "
                             "an actual revert of the optimization lands far below it")
    args = parser.parse_args()

    baseline = load_kernels(args.baseline)
    current = load_kernels(args.current)

    failures = []
    for key, base in sorted(baseline.items()):
        name, n = key
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name} n={n}: missing from current run")
            continue
        if not cur.get("match", False):
            failures.append(f"{name} n={n}: optimized output diverged from reference")
            continue
        floor = min(base["speedup"] * (1.0 - args.max_regression), args.healthy)
        status = "ok" if cur["speedup"] >= floor else "REGRESSED"
        print(f"{name:>16} n={n:<5} baseline {base['speedup']:7.2f}x "
              f"current {cur['speedup']:7.2f}x (floor {floor:.2f}x) {status}")
        if cur["speedup"] < floor:
            failures.append(
                f"{name} n={n}: speedup {cur['speedup']:.2f}x below floor "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x)")

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench regression gate passed "
          f"({len(baseline)} kernels, max regression {args.max_regression:.0%}).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
