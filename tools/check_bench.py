#!/usr/bin/env python3
"""Bench regression gate.

Dispatches on the JSON schema of the two input files:

adhoc-micro-v1 (bench_micro)
    Fails when any kernel's *speedup ratio* regressed by more than the
    allowed fraction.  Ratios — optimized time relative to the reference
    implementation measured in the same process — are stable across
    machines and CI runners, unlike absolute nanoseconds, so the gate
    catches "someone slowed the optimized path back down" without flaking
    on runner speed.

adhoc-saturation-v1 (bench_saturation)
    Fails when, for any (panel, load, algorithm) cell, the delivered-
    session ratio dropped by more than --max-delivery-drop (absolute) or
    the simulated-time throughput regressed by more than --max-regression
    (fractional).  Both metrics are simulation outputs — deterministic for
    a given seed — so any drift is a code change, not runner noise.

adhoc-resilience-v1 (bench_resilience)
    Every (panel, crash_rate, loss, beta, algorithm) cell's outputs —
    delivery ratio, forward mean, outcome split, retransmits and the SINR
    rejection/capture counters — are deterministic simulation results for
    a given seed and must match the baseline exactly.

adhoc-scale-v1 (bench_scale)
    Per (nodes, policy) row the deterministic simulation outputs —
    delivered_events, forward_count, received_count, full_delivery,
    windows, completion_time and the canonical order_digest — must match
    the baseline *exactly*: they are pure functions of (seed, wheels), so
    any drift is a semantic change in the engine, not noise.  All policies
    at one size must agree on received_count (forwarding policies change
    who transmits, never who is reached).  Engine state bytes per node may
    grow by at most --max-regression.  Timing fields are compared only
    when both files carry them (a --no-timing run zeroes them):
    events_per_sec gets the usual per-policy fractional floor.

adhoc-scale-resilience-v1 (bench_scale --resilience)
    Per (nodes, policy, crash_rate, churn) row the mean delivery ratio may
    drop by at most --max-delivery-drop (absolute) below the baseline; every
    other simulation output — outcome split, forward/received sums, the
    retransmit/control/fault_suppressed counters, windows, completion and
    the folded order_digest — is a pure function of the seed and must match
    the baseline exactly.

All checkers warn about rows present in CURRENT but absent from BASELINE
(a grown sweep whose new cells are silently ungated); --strict-extra turns
those warnings into failures.

Usage:
    check_bench.py BASELINE.json CURRENT.json [--max-regression 0.25]
                   [--strict-extra]

Exit status: 0 = within bounds, 1 = regression / mismatch / missing entry.
"""

import argparse
import json
import sys


def load_doc(path, schemas):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") not in schemas:
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def check_extras(baseline, current, args):
    """Rows only CURRENT has are invisible to the baseline-driven loops
    above: a sweep that grew a panel would pass the gate with its new
    cells unchecked.  Surface them; --strict-extra makes them failures so
    CI forces a baseline refresh."""
    failures = []
    for key in sorted(set(current) - set(baseline)):
        msg = f"{key!r}: present in current run but missing from baseline"
        if args.strict_extra:
            failures.append(msg)
        else:
            print(f"WARNING: {msg} (ungated; refresh the baseline "
                  "or pass --strict-extra to fail on this)")
    return failures


def micro_kernels(doc):
    return {(k["name"], k["n"]): k for k in doc["kernels"]}


def check_micro(baseline, current, args):
    baseline = micro_kernels(baseline)
    current = micro_kernels(current)

    failures = []
    for key, base in sorted(baseline.items()):
        name, n = key
        cur = current.get(key)
        if cur is None:
            failures.append(f"{name} n={n}: missing from current run")
            continue
        if not cur.get("match", False):
            failures.append(f"{name} n={n}: optimized output diverged from reference")
            continue
        floor = min(base["speedup"] * (1.0 - args.max_regression), args.healthy)
        status = "ok" if cur["speedup"] >= floor else "REGRESSED"
        print(f"{name:>16} n={n:<5} baseline {base['speedup']:7.2f}x "
              f"current {cur['speedup']:7.2f}x (floor {floor:.2f}x) {status}")
        if cur["speedup"] < floor:
            failures.append(
                f"{name} n={n}: speedup {cur['speedup']:.2f}x below floor "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x)")

    failures += check_extras(baseline, current, args)
    if not failures:
        print("\nbench regression gate passed "
              f"({len(baseline)} kernels, max regression {args.max_regression:.0%}).")
    return failures


def saturation_cells(doc):
    sessions = doc["runs_per_cell"] * doc["sessions_per_run"]
    cells = {}
    for panel in doc["panels"]:
        for cell in panel["cells"]:
            for algo in cell["algorithms"]:
                key = (panel["title"], cell["load"], algo["name"])
                cells[key] = dict(algo, sessions=sessions)
    return cells


def check_saturation(baseline, current, args):
    baseline = saturation_cells(baseline)
    current = saturation_cells(current)

    failures = []
    for key, base in sorted(baseline.items()):
        title, load, name = key
        label = f"{name} load={load:g}"
        cur = current.get(key)
        if cur is None:
            failures.append(f"{label}: missing from current run")
            continue
        base_ratio = base["delivered"] / base["sessions"]
        cur_ratio = cur["delivered"] / cur["sessions"]
        ratio_floor = base_ratio - args.max_delivery_drop
        thr_floor = base["throughput"] * (1.0 - args.max_regression)
        ok = cur_ratio >= ratio_floor and cur["throughput"] >= thr_floor
        print(f"{label:>28} delivered {base_ratio:6.3f} -> {cur_ratio:6.3f} "
              f"(floor {ratio_floor:.3f})  throughput {base['throughput']:8.2f} -> "
              f"{cur['throughput']:8.2f} (floor {thr_floor:.2f}) "
              f"{'ok' if ok else 'REGRESSED'}")
        if cur_ratio < ratio_floor:
            failures.append(
                f"{label}: delivered ratio {cur_ratio:.3f} below floor "
                f"{ratio_floor:.3f} (baseline {base_ratio:.3f})")
        if cur["throughput"] < thr_floor:
            failures.append(
                f"{label}: throughput {cur['throughput']:.2f} below floor "
                f"{thr_floor:.2f} (baseline {base['throughput']:.2f})")

    failures += check_extras(baseline, current, args)
    if not failures:
        print("\nbench regression gate passed "
              f"({len(baseline)} saturation cells, max delivery drop "
              f"{args.max_delivery_drop:.2f}, max throughput regression "
              f"{args.max_regression:.0%}).")
    return failures


def scale_rows(doc):
    return {(r["nodes"], r["policy"]): r for r in doc["rows"]}


def check_scale(baseline, current, args):
    exact_fields = ("edges", "delivered_events", "forward_count",
                    "received_count", "full_delivery", "windows",
                    "peak_queue_events", "completion_time", "order_digest")
    baseline = scale_rows(baseline)
    current = scale_rows(current)

    failures = []
    # Per-policy delivery consistency: every policy at a given size runs on
    # the same placement, so all of them must reach the same node set
    # (pruning and coverage decisions change who *forwards*, never who
    # eventually receives).
    reached = {}
    for (nodes, policy), row in sorted(current.items()):
        reached.setdefault(nodes, {})[policy] = row["received_count"]
    for nodes, per_policy in sorted(reached.items()):
        counts = set(per_policy.values())
        if len(counts) > 1:
            detail = ", ".join(f"{p}={c}" for p, c in sorted(per_policy.items()))
            failures.append(
                f"n={nodes}: policies disagree on received_count ({detail})")
    for key, base in sorted(baseline.items()):
        nodes, policy = key
        label = f"{policy} n={nodes}"
        cur = current.get(key)
        if cur is None:
            failures.append(f"{label}: missing from current run")
            continue
        drifted = [f for f in exact_fields if cur.get(f) != base.get(f)]
        for field in drifted:
            failures.append(
                f"{label}: {field} drifted {base.get(field)!r} -> "
                f"{cur.get(field)!r} (deterministic field, must match exactly)")
        bytes_ceiling = base["engine_bytes_per_node"] * (1.0 + args.max_regression)
        if cur["engine_bytes_per_node"] > bytes_ceiling:
            failures.append(
                f"{label}: engine_bytes_per_node {cur['engine_bytes_per_node']:.2f} "
                f"above ceiling {bytes_ceiling:.2f} "
                f"(baseline {base['engine_bytes_per_node']:.2f})")
        timed = base.get("events_per_sec", 0) > 0 and cur.get("events_per_sec", 0) > 0
        eps_note = ""
        if timed:
            eps_floor = base["events_per_sec"] * (1.0 - args.max_regression)
            eps_note = (f"  ev/s {base['events_per_sec']:.3g} -> "
                        f"{cur['events_per_sec']:.3g} (floor {eps_floor:.3g})")
            if cur["events_per_sec"] < eps_floor:
                failures.append(
                    f"{label}: events_per_sec {cur['events_per_sec']:.3g} below "
                    f"floor {eps_floor:.3g} (baseline {base['events_per_sec']:.3g})")
        status = "ok" if not any(f.startswith(label + ":") for f in failures) \
            else "REGRESSED"
        print(f"{label:>24} digest {cur.get('order_digest', '?')} "
              f"bytes/node {cur['engine_bytes_per_node']:6.2f}{eps_note} {status}")

    failures += check_extras(baseline, current, args)
    if not failures:
        print("\nbench regression gate passed "
              f"({len(baseline)} scale rows, deterministic fields exact, "
              f"max bytes/timing regression {args.max_regression:.0%}).")
    return failures


def resilience_cells(doc):
    cells = {}
    for panel in doc["panels"]:
        for cell in panel["cells"]:
            for algo in cell["algorithms"]:
                key = (panel["title"], cell["crash_rate"], cell["loss"],
                       cell.get("beta", -1), algo["name"])
                cells[key] = algo
    return cells


def check_resilience(baseline, current, args):
    exact_fields = ("delivery_ratio", "forward_mean", "delivered", "degraded",
                    "partitioned", "retransmits", "sinr_rejections", "captures")
    baseline = resilience_cells(baseline)
    current = resilience_cells(current)

    failures = []
    for key, base in sorted(baseline.items()):
        _, crash, loss, beta, name = key
        label = f"{name} crash={crash:g} loss={loss:g} beta={beta:g}"
        cur = current.get(key)
        if cur is None:
            failures.append(f"{label}: missing from current run")
            continue
        drifted = [f for f in exact_fields if cur.get(f) != base.get(f)]
        for field in drifted:
            failures.append(
                f"{label}: {field} drifted {base.get(field)!r} -> "
                f"{cur.get(field)!r} (deterministic field, must match exactly)")
        status = "ok" if not drifted else "REGRESSED"
        print(f"{label:>44} delivery {cur.get('delivery_ratio', 0):6.4f} "
              f"rejections {cur.get('sinr_rejections', 0):6d} "
              f"captures {cur.get('captures', 0):6d} {status}")

    failures += check_extras(baseline, current, args)
    if not failures:
        print("\nbench regression gate passed "
              f"({len(baseline)} resilience cells, all fields exact).")
    return failures


def scale_resilience_rows(doc):
    return {(r["nodes"], r["policy"], r["crash_rate"], r["churn"]): r
            for r in doc["rows"]}


def check_scale_resilience(baseline, current, args):
    exact_fields = ("runs", "delivered", "degraded", "partitioned",
                    "received_sum", "forward_sum", "retransmits",
                    "control_count", "fault_suppressed", "delivered_events",
                    "windows", "completion_sum", "order_digest")
    baseline = scale_resilience_rows(baseline)
    current = scale_resilience_rows(current)

    failures = []
    for key, base in sorted(baseline.items()):
        nodes, policy, crash, churn = key
        label = (f"{policy} n={nodes} crash={crash:g} "
                 f"churn={'on' if churn else 'off'}")
        cur = current.get(key)
        if cur is None:
            failures.append(f"{label}: missing from current run")
            continue
        # Delivery gets an absolute floor rather than exactness so a future
        # intentional recovery tuning only needs a baseline refresh when it
        # actually loses nodes, not when counters shift.
        ratio_floor = base["delivery_ratio"] - args.max_delivery_drop
        if cur["delivery_ratio"] < ratio_floor:
            failures.append(
                f"{label}: delivery_ratio {cur['delivery_ratio']:.4f} below "
                f"floor {ratio_floor:.4f} (baseline {base['delivery_ratio']:.4f})")
        drifted = [f for f in exact_fields if cur.get(f) != base.get(f)]
        for field in drifted:
            failures.append(
                f"{label}: {field} drifted {base.get(field)!r} -> "
                f"{cur.get(field)!r} (deterministic field, must match exactly)")
        status = "ok" if not any(f.startswith(label + ":") for f in failures) \
            else "REGRESSED"
        print(f"{label:>44} delivery {cur.get('delivery_ratio', 0):6.4f} "
              f"(floor {ratio_floor:.4f}) retx {cur.get('retransmits', 0):6d} "
              f"digest {cur.get('order_digest', '?')} {status}")

    failures += check_extras(baseline, current, args)
    if not failures:
        print("\nbench regression gate passed "
              f"({len(baseline)} scale-resilience rows, deterministic fields "
              f"exact, max delivery drop {args.max_delivery_drop:.2f}).")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional drop in speedup/throughput "
                             "(default 0.25)")
    parser.add_argument("--healthy", type=float, default=20.0,
                        help="micro only: speedups at or above this always pass "
                             "(default 20); two-orders-of-magnitude ratios are "
                             "noise-dominated, and an actual revert of the "
                             "optimization lands far below it")
    parser.add_argument("--max-delivery-drop", type=float, default=0.05,
                        help="saturation only: allowed absolute drop in the "
                             "delivered-session ratio (default 0.05)")
    parser.add_argument("--strict-extra", action="store_true",
                        help="fail (instead of warn) when the current run has "
                             "rows the baseline does not pin")
    args = parser.parse_args()

    schemas = ("adhoc-micro-v1", "adhoc-saturation-v1", "adhoc-scale-v1",
               "adhoc-resilience-v1", "adhoc-scale-resilience-v1")
    baseline = load_doc(args.baseline, schemas)
    current = load_doc(args.current, (baseline["schema"],))

    if baseline["schema"] == "adhoc-micro-v1":
        failures = check_micro(baseline, current, args)
    elif baseline["schema"] == "adhoc-saturation-v1":
        failures = check_saturation(baseline, current, args)
    elif baseline["schema"] == "adhoc-resilience-v1":
        failures = check_resilience(baseline, current, args)
    elif baseline["schema"] == "adhoc-scale-resilience-v1":
        failures = check_scale_resilience(baseline, current, args)
    else:
        failures = check_scale(baseline, current, args)

    if failures:
        print("\nbench regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
