#!/usr/bin/env python3
"""Self-test for check_bench.py.

Synthesizes minimal baseline/current documents per schema and asserts the
gate's exit codes: identical runs pass, drifted deterministic fields fail,
rows missing from the baseline warn by default and fail under
--strict-extra.  Run by ctest (tool: check_bench_selftest); needs only the
stdlib and check_bench.py next to this file.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)), "check_bench.py")


def run_checker(baseline, current, *flags):
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "baseline.json")
        cpath = os.path.join(tmp, "current.json")
        with open(bpath, "w", encoding="utf-8") as fh:
            json.dump(baseline, fh)
        with open(cpath, "w", encoding="utf-8") as fh:
            json.dump(current, fh)
        proc = subprocess.run(
            [sys.executable, CHECKER, bpath, cpath, *flags],
            capture_output=True, text=True, check=False)
        return proc


def resilience_doc():
    algo = {"name": "Flooding", "delivery_ratio": 1.0, "forward_mean": 24.0,
            "delivered": 6, "degraded": 0, "partitioned": 0,
            "retransmits": 0, "sinr_rejections": 0, "captures": 120}
    return {
        "schema": "adhoc-resilience-v1",
        "name": "bench_resilience",
        "panels": [{
            "title": "delivery vs SINR capture threshold (crash=0, loss=0)",
            "cells": [{"crash_rate": 0.0, "loss": 0.0, "beta": 0.0,
                       "algorithms": [algo]}],
        }],
    }


def scale_resilience_doc():
    row = {"nodes": 1000, "policy": "flood", "crash_rate": 0.05,
           "churn": True, "runs": 3, "delivery_ratio": 1.0,
           "delivered": 0, "degraded": 0, "partitioned": 3,
           "received_sum": 2946, "forward_sum": 2946, "retransmits": 9,
           "control_count": 8451, "fault_suppressed": 2066,
           "delivered_events": 17000, "windows": 150,
           "completion_sum": 150.0, "order_digest": "44a3016048cc5a0f",
           "wall_seconds": 0, "events_per_sec": 0}
    return {
        "schema": "adhoc-scale-resilience-v1",
        "name": "bench_scale_resilience",
        "seed": "42",
        "wheels": 8,
        "rows": [row],
    }


def micro_doc():
    return {
        "schema": "adhoc-micro-v1",
        "kernels": [{"name": "coverage", "n": 64, "speedup": 5.0,
                     "match": True}],
    }


CHECKS = []


def check(name):
    def wrap(fn):
        CHECKS.append((name, fn))
        return fn
    return wrap


@check("resilience: identical runs pass")
def _(doc=resilience_doc()):
    assert run_checker(doc, doc).returncode == 0


@check("resilience: drifted counter fails")
def _():
    base = resilience_doc()
    cur = copy.deepcopy(base)
    cur["panels"][0]["cells"][0]["algorithms"][0]["sinr_rejections"] = 7
    proc = run_checker(base, cur)
    assert proc.returncode == 1
    assert "sinr_rejections" in proc.stderr


@check("resilience: cell missing from current fails")
def _():
    base = resilience_doc()
    cur = copy.deepcopy(base)
    cur["panels"][0]["cells"][0]["algorithms"] = []
    assert run_checker(base, cur).returncode == 1


@check("scale-resilience: identical runs pass")
def _(doc=scale_resilience_doc()):
    assert run_checker(doc, doc).returncode == 0


@check("scale-resilience: drifted digest fails")
def _():
    base = scale_resilience_doc()
    cur = copy.deepcopy(base)
    cur["rows"][0]["order_digest"] = "deadbeefdeadbeef"
    proc = run_checker(base, cur)
    assert proc.returncode == 1
    assert "order_digest" in proc.stderr


@check("scale-resilience: delivery drop within the floor passes")
def _():
    base = scale_resilience_doc()
    cur = copy.deepcopy(base)
    cur["rows"][0]["delivery_ratio"] = 0.96
    assert run_checker(base, cur).returncode == 0


@check("scale-resilience: delivery drop below the floor fails")
def _():
    base = scale_resilience_doc()
    cur = copy.deepcopy(base)
    cur["rows"][0]["delivery_ratio"] = 0.90
    proc = run_checker(base, cur)
    assert proc.returncode == 1
    assert "delivery_ratio" in proc.stderr


@check("scale-resilience: timing fields are not gated")
def _():
    base = scale_resilience_doc()
    cur = copy.deepcopy(base)
    cur["rows"][0]["wall_seconds"] = 42.0
    cur["rows"][0]["events_per_sec"] = 1.0
    assert run_checker(base, cur).returncode == 0


@check("extras: row missing from baseline warns but passes")
def _():
    cur = resilience_doc()
    base = copy.deepcopy(cur)
    base["panels"][0]["cells"][0]["algorithms"] = []
    proc = run_checker(base, cur)
    assert proc.returncode == 0
    assert "missing from baseline" in proc.stdout


@check("extras: --strict-extra turns the warning into a failure")
def _():
    cur = resilience_doc()
    base = copy.deepcopy(cur)
    base["panels"][0]["cells"][0]["algorithms"] = []
    proc = run_checker(base, cur, "--strict-extra")
    assert proc.returncode == 1
    assert "missing from baseline" in proc.stderr


@check("extras: micro checker warns about unpinned kernels too")
def _():
    cur = micro_doc()
    cur["kernels"].append({"name": "maxmin", "n": 128, "speedup": 3.0,
                           "match": True})
    proc = run_checker(micro_doc(), cur)
    assert proc.returncode == 0
    assert "missing from baseline" in proc.stdout
    assert run_checker(micro_doc(), cur, "--strict-extra").returncode == 1


@check("schema mismatch between files is rejected")
def _():
    proc = run_checker(resilience_doc(), micro_doc())
    assert proc.returncode != 0


def main():
    failures = 0
    for name, fn in CHECKS:
        try:
            fn()
            print(f"ok   {name}")
        except AssertionError:
            failures += 1
            print(f"FAIL {name}")
    print(f"check_bench_test: {len(CHECKS) - failures}/{len(CHECKS)} passed")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
