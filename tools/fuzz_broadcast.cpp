/// \file fuzz_broadcast.cpp
/// \brief Differential fuzzer driver.
///
/// Modes:
///   fuzz_broadcast [--seed N] [--iters N] [--seconds F] [--jobs N]
///                  [--max-nodes N] [--algorithm NAME] [--no-faults]
///                  [--out DIR]
///       Run a fuzz campaign.  Exit 1 when any oracle fires; minimized
///       repros are written to DIR (when given) as .repro files.
///   fuzz_broadcast --replay FILE...
///       Re-execute each repro and verify the recorded digest and oracle
///       expectation.  Output is a pure function of the file contents —
///       identical at any --jobs value.  Exit 1 on any mismatch.
///   fuzz_broadcast --mutants [--seed N] [--iters N]
///       Oracle mutation-kill gate: every catalog mutant must be caught
///       and shrunk.  Exit 1 when any mutant survives.
///   fuzz_broadcast --emit-corpus DIR
///       Write the deterministic seed corpus (small passing scenarios with
///       pinned digests) into DIR.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzzer.hpp"
#include "fuzz/oracles.hpp"
#include "fuzz/repro.hpp"
#include "graph/graph.hpp"
#include "io/cli.hpp"

namespace {

using namespace adhoc;
using namespace adhoc::fuzz;

struct Args {
    std::uint64_t seed = 1;
    std::uint64_t iters = 500;
    double seconds = 0.0;
    std::size_t jobs = 1;
    std::size_t max_nodes = 48;
    bool faults = true;
    double churn = 1.0;
    double traffic = 1.0;
    double scale = 1.0;
    double medium = 1.0;
    std::string algorithm;
    std::string out_dir;
    std::vector<std::string> replay_files;
    bool mutants = false;
    std::string corpus_dir;
    bool bad = false;
};

void print_usage() {
    std::fprintf(stderr,
                 "usage: fuzz_broadcast [--seed N] [--iters N] [--seconds F] [--jobs N]\n"
                 "                      [--max-nodes N] [--algorithm NAME] [--no-faults]\n"
                 "                      [--churn F] [--traffic F] [--scale F] [--medium F]\n"
                 "                      [--out DIR]\n"
                 "       fuzz_broadcast --replay FILE...\n"
                 "       fuzz_broadcast --mutants [--seed N] [--iters N]\n"
                 "       fuzz_broadcast --emit-corpus DIR\n");
}

Args parse_args(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                args.bad = true;
                return "";
            }
            return argv[++i];
        };
        // Validated numeric values: a flag whose value fails to parse is a
        // usage error (exit 2), never a silent 0 or an uncaught exception.
        const auto next_u64 = [&](std::uint64_t& out) {
            const std::string text = next();
            if (args.bad) return;
            if (const auto value = io::parse_u64(text)) {
                out = *value;
            } else {
                std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(),
                             text.c_str());
                args.bad = true;
            }
        };
        const auto next_size = [&](std::size_t& out) {
            std::uint64_t value = 0;
            next_u64(value);
            if (!args.bad) out = static_cast<std::size_t>(value);
        };
        // Shared validation for the non-negative knobs (durations and axis
        // intensities): one rejection path instead of one per flag.
        const auto next_nonneg = [&](double& out) {
            const std::string text = next();
            if (args.bad) return;
            if (const auto value = io::parse_nonnegative_double(text)) {
                out = *value;
            } else {
                std::fprintf(stderr, "invalid value for %s: '%s'\n", arg.c_str(),
                             text.c_str());
                args.bad = true;
            }
        };
        if (arg == "--seed") {
            next_u64(args.seed);
        } else if (arg == "--iters") {
            next_u64(args.iters);
        } else if (arg == "--seconds") {
            next_nonneg(args.seconds);
        } else if (arg == "--jobs") {
            next_size(args.jobs);
        } else if (arg == "--max-nodes") {
            next_size(args.max_nodes);
        } else if (arg == "--algorithm") {
            args.algorithm = next();
        } else if (arg == "--no-faults") {
            args.faults = false;
        } else if (arg == "--churn") {
            next_nonneg(args.churn);
        } else if (arg == "--traffic") {
            next_nonneg(args.traffic);
        } else if (arg == "--scale") {
            next_nonneg(args.scale);
        } else if (arg == "--medium") {
            next_nonneg(args.medium);
        } else if (arg == "--out") {
            args.out_dir = next();
        } else if (arg == "--replay") {
            while (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                args.replay_files.push_back(argv[++i]);
            }
            if (args.replay_files.empty()) {
                std::fprintf(stderr, "--replay needs at least one file\n");
                args.bad = true;
            }
        } else if (arg == "--mutants") {
            args.mutants = true;
        } else if (arg == "--emit-corpus") {
            args.corpus_dir = next();
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            args.bad = true;
        }
        if (args.bad) break;
    }
    return args;
}

/// Writes one finding's minimized repro; returns the path (empty on error).
std::string write_finding(const std::string& dir, const Finding& finding,
                          const AlgorithmPool& pool) {
    Repro repro;
    repro.scenario = finding.shrunk;
    repro.oracle = finding.oracle;
    std::uint64_t digest = 0;
    if (replay_digest(finding.shrunk, pool, &digest)) repro.digest = digest;
    repro.note = "iteration " + std::to_string(finding.iteration) + ": " + finding.detail;
    char name[64];
    std::snprintf(name, sizeof(name), "finding-%016" PRIx64 ".repro",
                  scenario_fingerprint(finding.shrunk));
    const std::string path = dir + "/" + name;
    if (!save_repro(path, repro)) return "";
    return path;
}

int run_fuzz_mode(const Args& args) {
    FuzzOptions options;
    options.base_seed = args.seed;
    options.iterations = args.iters;
    options.seconds = args.seconds;
    options.jobs = args.jobs;
    options.limits.max_nodes = args.max_nodes;
    options.limits.faults = args.faults;
    options.limits.churn_intensity = args.churn;
    options.limits.traffic_intensity = args.traffic;
    options.limits.scale_intensity = args.scale;
    options.limits.medium_intensity = args.medium;
    options.algorithm_override = args.algorithm;

    const FuzzReport report = run_fuzz(options);
    std::printf("fuzz: seed=%" PRIu64 " iterations=%" PRIu64 " passed=%" PRIu64
                " findings=%zu\n",
                args.seed, report.iterations_run, report.checks_passed,
                report.findings.size());
    if (report.clean()) return 0;

    const AlgorithmPool pool(/*with_mutants=*/true);
    if (!args.out_dir.empty()) std::filesystem::create_directories(args.out_dir);
    for (const Finding& finding : report.findings) {
        std::printf("FAIL iter=%" PRIu64 " oracle=%s nodes=%zu->%zu evals=%zu\n  %s\n",
                    finding.iteration, finding.oracle.c_str(),
                    finding.original.node_count, finding.shrunk.node_count,
                    finding.shrink.evals, finding.detail.c_str());
        if (!args.out_dir.empty()) {
            const std::string path = write_finding(args.out_dir, finding, pool);
            if (!path.empty()) std::printf("  repro: %s\n", path.c_str());
        }
    }
    return 1;
}

int run_replay_mode(const Args& args) {
    const AlgorithmPool pool(/*with_mutants=*/true);
    int failures = 0;
    for (const std::string& path : args.replay_files) {
        std::string error;
        const std::optional<Repro> repro = load_repro(path, &error);
        if (!repro) {
            std::printf("ERROR %s: %s\n", path.c_str(), error.c_str());
            ++failures;
            continue;
        }
        std::uint64_t digest = 0;
        if (!replay_digest(repro->scenario, pool, &digest)) {
            std::printf("ERROR %s: unknown algorithm '%s'\n", path.c_str(),
                        repro->scenario.config.algorithm.c_str());
            ++failures;
            continue;
        }
        const CheckReport check = check_scenario(repro->scenario, pool);
        const std::string observed = check.ok ? "pass" : check.oracle;
        bool ok = observed == repro->oracle;
        if (repro->digest && *repro->digest != digest) ok = false;
        std::printf("%s %s digest=0x%016" PRIx64 " oracle=%s\n", ok ? "OK" : "MISMATCH",
                    path.c_str(), digest, observed.c_str());
        if (!ok) {
            if (repro->digest && *repro->digest != digest) {
                std::printf("  expected digest 0x%016" PRIx64 "\n", *repro->digest);
            }
            if (observed != repro->oracle) {
                std::printf("  expected oracle %s: %s\n", repro->oracle.c_str(),
                            check.detail.c_str());
            }
            ++failures;
        }
    }
    return failures == 0 ? 0 : 1;
}

int run_mutants_mode(const Args& args) {
    const std::vector<MutantKill> kills = run_mutation_gate(args.seed, args.iters);
    int surviving = 0;
    for (const MutantKill& kill : kills) {
        if (kill.killed) {
            std::printf("KILLED %-20s iters=%" PRIu64 " oracle=%s shrunk_nodes=%zu\n",
                        kill.name.c_str(), kill.iterations, kill.oracle.c_str(),
                        kill.shrunk_nodes);
        } else {
            std::printf("SURVIVED %-18s after %" PRIu64 " iterations\n",
                        kill.name.c_str(), kill.iterations);
            ++surviving;
        }
    }
    std::printf("mutation gate: %zu/%zu killed\n", kills.size() - surviving, kills.size());
    return surviving == 0 ? 0 : 1;
}

/// Deterministic seed corpus: small structured scenarios spanning the
/// axes, digests pinned at emission time.
int run_emit_corpus(const Args& args) {
    struct Case {
        const char* name;
        const char* topology;  // path | cycle | star | grid | barbell
        std::size_t n;
        AlgorithmConfig config;
        std::vector<CrashFault> crashes;  // optional fault schedule
        bool recovery;                    // arm the NACK/retransmit layer

        Case(const char* name, const char* topology, std::size_t n, AlgorithmConfig config,
             std::vector<CrashFault> crashes = {}, bool recovery = false)
            : name(name),
              topology(topology),
              n(n),
              config(std::move(config)),
              crashes(std::move(crashes)),
              recovery(recovery) {}
    };
    const auto generic = [](Timing t, Selection sel, std::size_t hops, PriorityScheme p) {
        AlgorithmConfig c;
        c.timing = t;
        c.selection = sel;
        c.hops = hops;
        c.priority = p;
        return c;
    };
    const auto registry = [](const char* key) {
        AlgorithmConfig c;
        c.algorithm = key;
        return c;
    };
    const std::vector<Case> cases = {
        {"path5-static-sp", "path", 5,
         generic(Timing::kStatic, Selection::kSelfPruning, 2, PriorityScheme::kId)},
        {"cycle6-fr-sp", "cycle", 6,
         generic(Timing::kFirstReceipt, Selection::kSelfPruning, 2, PriorityScheme::kId)},
        {"star6-fr-nd", "star", 6,
         generic(Timing::kFirstReceipt, Selection::kNeighborDesignating, 2,
                 PriorityScheme::kId)},
        {"grid9-frb-sp", "grid", 9,
         generic(Timing::kRandomBackoff, Selection::kSelfPruning, 2,
                 PriorityScheme::kDegree)},
        {"barbell8-frbd-maxdeg", "barbell", 8,
         generic(Timing::kDegreeBackoff, Selection::kHybridMaxDegree, 2,
                 PriorityScheme::kDegree)},
        {"cycle5-fr-minpri", "cycle", 5,
         generic(Timing::kFirstReceipt, Selection::kHybridMinId, 2, PriorityScheme::kId)},
        {"path6-global-sp", "path", 6,
         generic(Timing::kStatic, Selection::kSelfPruning, 0, PriorityScheme::kId)},
        {"grid9-flooding", "grid", 9, registry("flooding")},
        {"barbell8-dp", "barbell", 8, registry("dp")},
        {"cycle7-mpr", "cycle", 7, registry("mpr")},
        {"star7-wu-li", "star", 7, registry("wu-li")},
        {"path7-sba", "path", 7, registry("sba")},
        // Fault corpus: exercises the crash/recovery path end to end.
        {"grid9-crash-recovery", "grid", 9,
         generic(Timing::kFirstReceipt, Selection::kSelfPruning, 2, PriorityScheme::kId),
         {CrashFault{4, 2.0, 6.0}}, /*recovery=*/true},
        // Crashing a bridge endpoint partitions the far clique: the run
        // must classify as partitioned, not hang or fail.
        {"barbell8-bridge-crash", "barbell", 8, registry("flooding"),
         {CrashFault{3, 0.5, -1.0}}, /*recovery=*/false},
    };

    std::filesystem::create_directories(args.corpus_dir);
    const AlgorithmPool pool(/*with_mutants=*/false);
    int failures = 0;
    int index = 0;
    for (const Case& c : cases) {
        Scenario s;
        s.family = "corpus";
        s.run_seed = 0x5eed0000ULL + static_cast<std::uint64_t>(index);
        s.node_count = c.n;
        s.source = 0;
        s.config = c.config;
        Graph g(0);
        const std::string topology = c.topology;
        if (topology == "path") {
            g = path_graph(c.n);
        } else if (topology == "cycle") {
            g = cycle_graph(c.n);
        } else if (topology == "star") {
            g = star_graph(c.n);
        } else if (topology == "grid") {
            g = grid_graph(3, c.n / 3);
        } else {
            // Barbell: two K_{n/2} cliques joined by a single bridge edge.
            const std::size_t half = c.n / 2;
            g = Graph(2 * half);
            for (std::size_t u = 0; u < half; ++u) {
                for (std::size_t v = u + 1; v < half; ++v) {
                    g.add_edge(u, v);
                    g.add_edge(half + u, half + v);
                }
            }
            g.add_edge(half - 1, half);
        }
        s.node_count = g.node_count();
        s.edges = g.edges();
        s.crashes = c.crashes;
        s.recovery = c.recovery;
        s = normalized(s);

        const CheckReport check = check_scenario(s, pool);
        if (!check.ok) {
            std::printf("SKIP %s: oracle %s fired during emission: %s\n", c.name,
                        check.oracle.c_str(), check.detail.c_str());
            ++failures;
            continue;
        }
        Repro repro;
        repro.scenario = s;
        repro.oracle = "pass";
        repro.digest = check.digest;
        repro.note = std::string("seed corpus: ") + c.name;
        char file[96];
        std::snprintf(file, sizeof(file), "%02d-%s.repro", index, c.name);
        const std::string path = args.corpus_dir + "/" + file;
        if (!save_repro(path, repro)) {
            std::printf("ERROR writing %s\n", path.c_str());
            ++failures;
        } else {
            std::printf("wrote %s digest=0x%016" PRIx64 "\n", path.c_str(), check.digest);
        }
        ++index;
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse_args(argc, argv);
    if (args.bad) {
        print_usage();
        return 2;
    }
    if (!args.replay_files.empty()) return run_replay_mode(args);
    if (args.mutants) return run_mutants_mode(args);
    if (!args.corpus_dir.empty()) return run_emit_corpus(args);
    return run_fuzz_mode(args);
}
