#!/usr/bin/env sh
# Regenerates the paper figures as PNG plots.
#
#   tools/plot_figures.sh [build-dir] [out-dir]
#
# Runs every fig* bench with --gnuplot, then renders each emitted .dat with
# gnuplot (if installed).  Each data file is one figure panel; columns are
# algorithms, rows are network sizes.

set -eu
BUILD=${1:-build}
OUT=${2:-plots}
mkdir -p "$OUT"
cd "$OUT"

for bench in fig10_timing fig11_selection fig12_space fig13_priority \
             fig14_static fig15_first_receipt fig16_backoff; do
  bin="../$BUILD/bench/$bench"
  [ -x "$bin" ] || { echo "missing $bin (build first)"; exit 1; }
  echo "running $bench ..."
  "$bin" --runs 200 --gnuplot "$bench" > "$bench.txt"
done

if ! command -v gnuplot > /dev/null 2>&1; then
  echo "gnuplot not installed; .dat files left in $OUT"
  exit 0
fi

for dat in *.dat; do
  png="${dat%.dat}.png"
  cols=$(awk 'NR==2 {print NF; exit}' "$dat")
  {
    echo "set terminal pngcairo size 800,600"
    echo "set output '$png'"
    echo "set key top left"
    echo "set xlabel 'Number of nodes'"
    echo "set ylabel 'Number of forward nodes'"
    echo "set title '$(head -1 "$dat" | sed 's/^# //')'"
    printf "plot"
    i=2
    while [ "$i" -le "$cols" ]; do
      name=$(head -2 "$dat" | tail -1 | awk -v c="$i" '{print $(c)}')
      [ "$i" -gt 2 ] && printf ","
      printf " '%s' using 1:%s with linespoints title '%s'" "$dat" "$i" "$name"
      i=$((i + 1))
    done
    echo
  } | gnuplot
  echo "wrote $OUT/$png"
done
