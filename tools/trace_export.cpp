/// \file trace_export.cpp
/// \brief chrome://tracing export for telemetry spans and broadcast runs.
///
/// Modes:
///   trace_export --in SPANS.jsonl --out TRACE.json
///       Convert a telemetry JSONL stream (ADHOC_TELEMETRY=path with
///       ADHOC_TELEMETRY_SPANS=1) into the chrome://tracing array format.
///       Non-span records are skipped; span timestamps are wall-clock.
///   trace_export --demo N [--seed S] [--degree D] --out TRACE.json
///       Run one traced broadcast (generic FR, 2-hop) on a random N-node
///       connected unit disk graph and export its *virtual-time* timeline:
///       one tracing row per node, a complete event per transmission
///       (spanning until its last copy lands) and instant events for
///       receive/prune/designate.  1 simulated time unit renders as 1 ms.
///
/// Load the output at chrome://tracing or https://ui.perfetto.dev.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "io/cli.hpp"
#include "telemetry/sinks.hpp"

namespace {

using namespace adhoc;
namespace tel = telemetry;

struct Args {
    std::string in_path;
    std::string out_path;
    std::size_t demo_nodes = 0;  ///< 0 = convert mode
    std::uint64_t seed = 2003;
    double degree = 6.0;
    bool bad = false;
};

void print_usage() {
    std::fprintf(stderr,
                 "usage: trace_export --in SPANS.jsonl --out TRACE.json\n"
                 "       trace_export --demo N [--seed S] [--degree D] --out TRACE.json\n");
}

Args parse_args(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                args.bad = true;
                return "";
            }
            return argv[++i];
        };
        if (arg == "--in") {
            args.in_path = next();
        } else if (arg == "--out") {
            args.out_path = next();
        } else if (arg == "--demo") {
            const std::string text = next();
            if (args.bad) break;
            const auto value = io::parse_size(text);
            if (value && *value > 0) {
                args.demo_nodes = *value;
            } else {
                std::fprintf(stderr, "invalid value for --demo: '%s'\n", text.c_str());
                args.bad = true;
            }
        } else if (arg == "--seed") {
            const std::string text = next();
            if (args.bad) break;
            const auto value = io::parse_u64(text);
            if (value) {
                args.seed = *value;
            } else {
                std::fprintf(stderr, "invalid value for --seed: '%s'\n", text.c_str());
                args.bad = true;
            }
        } else if (arg == "--degree") {
            const std::string text = next();
            if (args.bad) break;
            const auto value = io::parse_double(text);
            if (value && *value > 0.0) {
                args.degree = *value;
            } else {
                std::fprintf(stderr, "invalid value for --degree: '%s'\n", text.c_str());
                args.bad = true;
            }
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            args.bad = true;
        }
        if (args.bad) break;
    }
    if (!args.bad && args.out_path.empty()) {
        std::fprintf(stderr, "--out is required\n");
        args.bad = true;
    }
    if (!args.bad && args.in_path.empty() && args.demo_nodes == 0) {
        std::fprintf(stderr, "pick a mode: --in FILE or --demo N\n");
        args.bad = true;
    }
    return args;
}

int convert_mode(const Args& args) {
    std::ifstream in(args.in_path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", args.in_path.c_str());
        return 1;
    }
    std::vector<tel::ChromeEvent> events;
    std::size_t lines = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lines;
        const std::optional<tel::SpanRecord> span = tel::parse_span_line(line);
        if (!span) continue;  // run records, blank lines
        tel::ChromeEvent e;
        e.name = span->name;
        e.tid = span->tid;
        e.ts_us = static_cast<double>(span->ts_ns) / 1000.0;
        e.dur_us = static_cast<double>(span->dur_ns) / 1000.0;
        events.push_back(std::move(e));
    }
    std::ofstream out(args.out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", args.out_path.c_str());
        return 1;
    }
    tel::write_chrome_trace(out, events);
    std::fprintf(stderr, "trace_export: %zu spans from %zu lines -> %s\n", events.size(),
                 lines, args.out_path.c_str());
    return 0;
}

/// Virtual sim time -> trace microseconds: 1 time unit = 1 ms, so the
/// default propagation delay lands at a readable zoom level.
double vt_us(double time) { return time * 1000.0; }

int demo_mode(const Args& args) {
    Rng rng(args.seed);
    UnitDiskParams params;
    params.node_count = args.demo_nodes;
    params.average_degree = args.degree;
    const UnitDiskNetwork net = generate_network_checked(params, rng);
    const GenericBroadcast algorithm(generic_fr_config(/*hops=*/2));
    const NodeId source = static_cast<NodeId>(rng.index(net.graph.node_count()));
    const BroadcastResult result =
        algorithm.broadcast_traced(net.graph, source, rng, MediumConfig{});

    // Each transmission becomes a complete event lasting until its final
    // copy is delivered (receive events record the sender), so the row
    // shows how long the packet was "in the air".
    const std::vector<TraceEvent>& trace = result.trace.events();
    std::vector<tel::ChromeEvent> events;
    events.reserve(trace.size());
    for (const TraceEvent& ev : trace) {
        tel::ChromeEvent e;
        e.tid = static_cast<std::uint32_t>(ev.node);
        e.ts_us = vt_us(ev.time);
        switch (ev.kind) {
            case TraceKind::kTransmit: {
                double end = ev.time;
                for (const TraceEvent& rx : trace) {
                    if (rx.kind == TraceKind::kReceive && rx.other == ev.node &&
                        rx.time > end) {
                        end = rx.time;
                    }
                }
                e.name = "transmit";
                e.ph = 'X';
                e.dur_us = vt_us(end) - e.ts_us;
                break;
            }
            case TraceKind::kReceive:
                e.name = "receive(from " + std::to_string(ev.other) + ")";
                e.ph = 'i';
                break;
            case TraceKind::kPrune:
                e.name = "prune";
                e.ph = 'i';
                break;
            case TraceKind::kDesignate:
                e.name = "designated(by " + std::to_string(ev.other) + ")";
                e.ph = 'i';
                break;
            case TraceKind::kControl:
                e.name = "control";
                e.ph = 'i';
                break;
            case TraceKind::kRetransmit:
                e.name = "retransmit";
                e.ph = 'i';
                break;
        }
        events.push_back(std::move(e));
    }

    std::ofstream out(args.out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", args.out_path.c_str());
        return 1;
    }
    tel::write_chrome_trace(out, events);
    std::fprintf(stderr,
                 "trace_export: n=%zu source=%zu forwards=%zu reached=%zu/%zu "
                 "events=%zu -> %s\n",
                 net.graph.node_count(), static_cast<std::size_t>(source),
                 result.forward_count, result.received_count, net.graph.node_count(),
                 events.size(), args.out_path.c_str());
    return result.full_delivery ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const Args args = parse_args(argc, argv);
    if (args.bad) {
        print_usage();
        return 2;
    }
    if (args.demo_nodes > 0) return demo_mode(args);
    return convert_mode(args);
}
